package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"transientbd/internal/core"
	"transientbd/internal/simnet"
	"transientbd/internal/stream"
	"transientbd/internal/trace"
)

// fixedNow is the deterministic wall clock every fixture server runs on.
var fixedNow = time.UnixMilli(1_700_000_000_000)

// fixtureMetrics is a mid-run self-metrics block: two shards, a little
// backlog on shard 0, a checkpoint eight seconds old, the watermark
// 0.95s of trace time behind the newest departure.
func fixtureMetrics() stream.Metrics {
	return stream.Metrics{
		Shards:             2,
		Ingested:           50000,
		Dropped:            3,
		Late:               12,
		IntervalsClosed:    480,
		Congested:          37,
		Freezes:            4,
		Reestimates:        9,
		QueueDepth:         []int64{5, 0},
		Checkpoints:        6,
		Watermark:          12_000_000,
		MaxDepart:          12_950_000,
		LastCheckpointWall: fixedNow.Add(-8 * time.Second).UnixNano(),
	}
}

// fixtureHealth samples both shards healthy: shard 0 has queued work but
// a fresh heartbeat, shard 1 is idle with an old one (idle is fine).
func fixtureHealth() []stream.ShardHealth {
	return []stream.ShardHealth{
		{Shard: 0, Queued: 5, LastActive: fixedNow.Add(-40 * time.Millisecond)},
		{Shard: 1, Queued: 0, LastActive: fixedNow.Add(-2 * time.Second)},
	}
}

// fixtureSnapshot is a two-server merged snapshot: mysql-1 congested
// with one freeze, tomcat-1 clean. Eight 50ms intervals each.
func fixtureSnapshot() *stream.Snapshot {
	iv := simnet.Duration(50 * simnet.Millisecond)
	mysql := &core.OnlineSnapshot{
		Start:    11_600_000,
		Interval: iv,
		Load:     []float64{4.1, 9.8, 131.0, 142.7, 126.3, 8.2, 5.5, 4.9},
		TP:       []float64{310, 640, 55, 0, 120, 580, 420, 360},
		NStar:    core.NStarResult{NStar: 120.5, TPMax: 980, Saturated: true},
		States: []core.IntervalState{
			core.StateNormal, core.StateNormal, core.StateCongested,
			core.StateCongested, core.StateCongested, core.StateNormal,
			core.StateNormal, core.StateNormal,
		},
		POIs:               []int{3},
		CongestedIntervals: 3,
		CongestedFraction:  0.375,
	}
	tomcat := &core.OnlineSnapshot{
		Start:    11_600_000,
		Interval: iv,
		Load:     []float64{2.0, 2.4, 3.1, 3.0, 2.8, 2.2, 2.1, 2.0},
		TP:       []float64{300, 320, 340, 335, 330, 310, 305, 300},
		NStar:    core.NStarResult{NStar: 3.1, TPMax: 340, Saturated: false},
		States: []core.IntervalState{
			core.StateNormal, core.StateNormal, core.StateNormal,
			core.StateNormal, core.StateNormal, core.StateNormal,
			core.StateNormal, core.StateNormal,
		},
		CongestedIntervals: 0,
		CongestedFraction:  0,
	}
	return &stream.Snapshot{
		At: 12_000_000,
		Ranking: []stream.ServerSnapshot{
			{Server: "mysql-1", OnlineSnapshot: mysql},
			{Server: "tomcat-1", OnlineSnapshot: tomcat},
		},
		Metrics: fixtureMetrics(),
	}
}

// fixtureAlert is the freeze interval from the fixture snapshot as it
// would stream over /alerts.
func fixtureAlert() stream.Alert {
	return stream.Alert{
		Server: "mysql-1",
		At:     11_750_000,
		Load:   142.7,
		TP:     0,
		State:  core.StateCongested,
		POI:    true,
	}
}

// fixtureServer builds a Server over the static fixtures and the fixed
// clock. The caller publishes the snapshot / readiness it needs.
func fixtureServer() *Server {
	return New(Config{
		Metrics: func() stream.Metrics { return fixtureMetrics() },
		Health:  func() []stream.ShardHealth { return fixtureHealth() },
		Now:     func() time.Time { return fixedNow },
	})
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestEndpointsStatusAndContentType(t *testing.T) {
	s := fixtureServer()
	h := s.Handler()

	// Before any snapshot or readiness: the query API declines, probes
	// answer, metrics scrape.
	for _, tc := range []struct {
		path string
		code int
		ct   string
	}{
		{"/", http.StatusOK, "text/plain; charset=utf-8"},
		{"/metrics", http.StatusOK, "text/plain; version=0.0.4; charset=utf-8"},
		{"/healthz", http.StatusOK, "application/json"},
		{"/readyz", http.StatusServiceUnavailable, "application/json"},
		{"/report", http.StatusServiceUnavailable, "application/json"},
		{"/servers/mysql-1/series", http.StatusServiceUnavailable, "application/json"},
	} {
		rec := get(t, h, tc.path)
		if rec.Code != tc.code {
			t.Errorf("GET %s: code = %d, want %d (body %q)", tc.path, rec.Code, tc.code, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != tc.ct {
			t.Errorf("GET %s: Content-Type = %q, want %q", tc.path, ct, tc.ct)
		}
	}

	s.PublishSnapshot(fixtureSnapshot())
	s.SetReady(true)
	for _, tc := range []struct {
		path string
		code int
	}{
		{"/readyz", http.StatusOK},
		{"/report", http.StatusOK},
		{"/servers/mysql-1/series", http.StatusOK},
		{"/servers/tomcat-1/series", http.StatusOK},
		{"/servers/nosuch/series", http.StatusNotFound},
	} {
		if rec := get(t, h, tc.path); rec.Code != tc.code {
			t.Errorf("GET %s: code = %d, want %d (body %q)", tc.path, rec.Code, tc.code, rec.Body.String())
		}
	}

	// Non-GET methods are rejected by the route table.
	req := httptest.NewRequest(http.MethodPost, "/report", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /report: code = %d, want %d", rec.Code, http.StatusMethodNotAllowed)
	}
}

func TestReportAndSeriesContent(t *testing.T) {
	s := fixtureServer()
	s.PublishSnapshot(fixtureSnapshot())

	var rep ReportJSON
	if err := json.Unmarshal(get(t, s.Handler(), "/report").Body.Bytes(), &rep); err != nil {
		t.Fatalf("decode /report: %v", err)
	}
	if rep.WatermarkMicros != 12_000_000 {
		t.Errorf("watermark_us = %d, want 12000000", rep.WatermarkMicros)
	}
	if rep.PublishedUnixMilli != fixedNow.UnixMilli() {
		t.Errorf("published_unix_ms = %d, want %d", rep.PublishedUnixMilli, fixedNow.UnixMilli())
	}
	if len(rep.Servers) != 2 || rep.Servers[0].Server != "mysql-1" {
		t.Fatalf("servers = %+v, want mysql-1 ranked first of 2", rep.Servers)
	}
	worst := rep.Servers[0]
	if worst.CongestedIntervals != 3 || worst.Intervals != 8 || worst.POIs != 1 || !worst.Saturated {
		t.Errorf("mysql-1 rank row = %+v", worst)
	}
	if rep.Metrics.Ingested != 50000 || rep.Metrics.WatermarkMicros != 12_000_000 {
		t.Errorf("metrics block = %+v", rep.Metrics)
	}
	// The fixture's mysql-1 congests without a sharper fingerprint (8
	// intervals are too few for periodicity), so the attribution engine
	// must hand back a generic saturation verdict for it.
	if len(rep.Causes) == 0 || rep.Causes[0].Kind != "saturation" || rep.Causes[0].Server != "mysql-1" {
		t.Errorf("causes = %+v, want saturation@mysql-1 ranked first", rep.Causes)
	}
	if len(rep.Causes) > 0 && (rep.Causes[0].Confidence <= 0 || rep.Causes[0].Score <= 0) {
		t.Errorf("top cause has non-positive confidence/score: %+v", rep.Causes[0])
	}

	var ser SeriesJSON
	if err := json.Unmarshal(get(t, s.Handler(), "/servers/mysql-1/series").Body.Bytes(), &ser); err != nil {
		t.Fatalf("decode series: %v", err)
	}
	if ser.StartMicros != 11_600_000 || ser.IntervalMicros != 50_000 {
		t.Errorf("series grid = start %d interval %d", ser.StartMicros, ser.IntervalMicros)
	}
	if len(ser.Load) != 8 || len(ser.States) != 8 || ser.States[2] != "congested" || ser.States[0] != "normal" {
		t.Errorf("series content = %+v", ser)
	}
	if len(ser.POIs) != 1 || ser.POIs[0] != 3 {
		t.Errorf("series pois = %v, want [3]", ser.POIs)
	}

	// A server with no POIs serves an empty list, not null.
	var tom SeriesJSON
	if err := json.Unmarshal(get(t, s.Handler(), "/servers/tomcat-1/series").Body.Bytes(), &tom); err != nil {
		t.Fatalf("decode tomcat series: %v", err)
	}
	if tom.POIs == nil {
		t.Error("tomcat-1 pois is null, want []")
	}
}

// TestMetricNameStability pins the exported metric family names: renaming
// or removing one breaks dashboards, so this list is append-only.
func TestMetricNameStability(t *testing.T) {
	want := []string{
		"tbdetect_shards",
		"tbdetect_records_ingested_total",
		"tbdetect_records_dropped_total",
		"tbdetect_records_late_total",
		"tbdetect_records_lost_total",
		"tbdetect_intervals_closed_total",
		"tbdetect_intervals_congested_total",
		"tbdetect_freezes_total",
		"tbdetect_nstar_reestimates_total",
		"tbdetect_checkpoints_written_total",
		"tbdetect_checkpoints_failed_total",
		"tbdetect_checkpoint_age_seconds",
		"tbdetect_shard_restarts_total",
		"tbdetect_degraded_shards",
		"tbdetect_alerts_lost_total",
		"tbdetect_shard_queue_depth",
		"tbdetect_watermark_lag_seconds",
		"tbdetect_snapshot_age_seconds",
		"tbdetect_ready",
		"tbdetect_sse_subscribers",
		"tbdetect_sse_published_total",
		"tbdetect_sse_dropped_total",
		"tbdetect_nodes",
		"tbdetect_nodes_connected",
		"tbdetect_nodes_degraded",
		"tbdetect_node_connected",
		"tbdetect_node_degraded",
		"tbdetect_node_reconnects_total",
		"tbdetect_node_records_delivered_total",
		"tbdetect_node_records_deduped_total",
		"tbdetect_node_records_dropped_total",
		"tbdetect_node_records_invalid_total",
		"tbdetect_node_records_buffered",
		"tbdetect_node_watermark_lag_seconds",
		"tbdetect_node_silence_seconds",
		"tbdetect_peers_rejected_total",
		"tbdetect_agent_wal_depth",
		"tbdetect_agent_wal_segments",
		"tbdetect_agent_wal_spilling",
		"tbdetect_cause_confidence",
	}
	got := MetricNames()
	if len(got) != len(want) {
		t.Fatalf("MetricNames() has %d families, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MetricNames()[%d] = %q, want %q", i, got[i], want[i])
		}
	}

	// Every family must actually appear in a scrape with HELP and TYPE.
	body := get(t, fixtureServer().Handler(), "/metrics").Body.String()
	for _, name := range want {
		if !strings.Contains(body, "# HELP "+name+" ") || !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("scrape is missing HELP/TYPE for %s", name)
		}
	}
}

func TestMetricsScrapeValues(t *testing.T) {
	s := fixtureServer()
	s.PublishSnapshot(fixtureSnapshot())
	s.SetReady(true)
	body := get(t, s.Handler(), "/metrics").Body.String()
	for _, line := range []string{
		"tbdetect_shards 2",
		"tbdetect_records_ingested_total 50000",
		"tbdetect_records_dropped_total 3",
		"tbdetect_records_late_total 12",
		"tbdetect_intervals_congested_total 37",
		`tbdetect_shard_queue_depth{shard="0"} 5`,
		`tbdetect_shard_queue_depth{shard="1"} 0`,
		// (12_950_000 - 12_000_000) µs of trace time behind.
		"tbdetect_watermark_lag_seconds 0.95",
		// Checkpoint is exactly 8 wall seconds old on the fixed clock.
		"tbdetect_checkpoint_age_seconds 8",
		// Published at fixedNow, scraped at fixedNow.
		"tbdetect_snapshot_age_seconds 0",
		"tbdetect_ready 1",
		"tbdetect_sse_subscribers 0",
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("scrape is missing %q\nscrape:\n%s", line, body)
		}
	}
}

// TestHealthzStallRule: a shard is stalled only when it has queued work
// AND its heartbeat is stale — an idle shard with an old heartbeat is
// healthy (nothing to do is not a failure).
func TestHealthzStallRule(t *testing.T) {
	mk := func(h []stream.ShardHealth) *Server {
		return New(Config{
			Metrics:    func() stream.Metrics { return stream.Metrics{} },
			Health:     func() []stream.ShardHealth { return h },
			StaleAfter: 10 * time.Second,
			Now:        func() time.Time { return fixedNow },
		})
	}

	idleStale := mk([]stream.ShardHealth{{Shard: 0, Queued: 0, LastActive: fixedNow.Add(-time.Hour)}})
	if rec := get(t, idleStale.Handler(), "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("idle shard with stale heartbeat: code = %d, want 200 (idle is healthy)", rec.Code)
	}

	busyFresh := mk([]stream.ShardHealth{{Shard: 0, Queued: 900, LastActive: fixedNow.Add(-time.Second)}})
	if rec := get(t, busyFresh.Handler(), "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("busy shard with fresh heartbeat: code = %d, want 200", rec.Code)
	}

	busyStale := mk([]stream.ShardHealth{
		{Shard: 0, Queued: 1, LastActive: fixedNow.Add(-time.Minute)},
		{Shard: 1, Queued: 0, LastActive: fixedNow},
	})
	rec := get(t, busyStale.Handler(), "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("stalled shard: code = %d, want 503", rec.Code)
	}
	var h HealthJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if h.Status != "stalled" || !h.Shards[0].Stalled || h.Shards[1].Stalled {
		t.Errorf("healthz = %+v, want status stalled with only shard 0 flagged", h)
	}
}

// TestReadinessFlip walks the lifecycle: not ready at birth, ready while
// serving, not ready again once shutdown begins.
func TestReadinessFlip(t *testing.T) {
	s := fixtureServer()
	if rec := get(t, s.Handler(), "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("new server: readyz = %d, want 503", rec.Code)
	}
	s.SetReady(true)
	if rec := get(t, s.Handler(), "/readyz"); rec.Code != http.StatusOK {
		t.Errorf("after SetReady(true): readyz = %d, want 200", rec.Code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if rec := get(t, s.Handler(), "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("after Shutdown: readyz = %d, want 503", rec.Code)
	}
}

// TestReadyzReason: SetNotReady states why the 503, SetReady clears it,
// and a ready response never carries a reason.
func TestReadyzReason(t *testing.T) {
	s := fixtureServer()
	s.SetNotReady("resuming")
	rec := get(t, s.Handler(), "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d, want 503", rec.Code)
	}
	var rj ReadyJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &rj); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rj.Ready || rj.Reason != "resuming" {
		t.Errorf("got %+v, want not ready with reason %q", rj, "resuming")
	}
	s.SetReady(true)
	rec = get(t, s.Handler(), "/readyz")
	if strings.Contains(rec.Body.String(), "reason") {
		t.Errorf("ready response carries a reason: %s", rec.Body.String())
	}
	s.SetReady(false)
	rec = get(t, s.Handler(), "/readyz")
	if strings.Contains(rec.Body.String(), "reason") {
		t.Errorf("reason survived a SetReady cycle: %s", rec.Body.String())
	}
}

// TestNodeMetrics: with a node source the tbdetect_node_* families carry
// per-node samples; without one they render headers only, so a
// single-process scrape is unchanged beyond the appended HELP/TYPE.
func TestNodeMetrics(t *testing.T) {
	bare := get(t, fixtureServer().Handler(), "/metrics").Body.String()
	if strings.Contains(bare, `{node=`) {
		t.Fatalf("node samples rendered without a node source:\n%s", bare)
	}

	if strings.Contains(bare, "tbdetect_peers_rejected_total 0") {
		t.Fatalf("peers_rejected sample rendered without a source:\n%s", bare)
	}

	views := []NodeView{
		{Node: "n1", WatermarkMicros: 5_000_000, Sessions: 3, Connected: true,
			Delivered: 1000, Deduped: 40, Buffered: 7, LastFrameWall: fixedNow.Add(-2 * time.Second).UnixNano(),
			WALDepth: 120, WALSegments: 3, Spilling: true},
		{Node: "n2", WatermarkMicros: 2_000_000, Sessions: 1, Degraded: true,
			Delivered: 400, Dropped: 25, LastFrameWall: fixedNow.Add(-30 * time.Second).UnixNano()},
	}
	s := New(Config{
		Metrics:       func() stream.Metrics { return fixtureMetrics() },
		Health:        func() []stream.ShardHealth { return fixtureHealth() },
		Now:           func() time.Time { return fixedNow },
		Nodes:         func() []NodeView { return views },
		PeersRejected: func() int64 { return 4 },
	})
	body := get(t, s.Handler(), "/metrics").Body.String()
	for _, want := range []string{
		"tbdetect_nodes 2\n",
		"tbdetect_nodes_connected 1\n",
		"tbdetect_nodes_degraded 1\n",
		`tbdetect_node_connected{node="n1"} 1`,
		`tbdetect_node_connected{node="n2"} 0`,
		`tbdetect_node_degraded{node="n2"} 1`,
		`tbdetect_node_reconnects_total{node="n1"} 2`,
		`tbdetect_node_reconnects_total{node="n2"} 0`,
		`tbdetect_node_records_delivered_total{node="n1"} 1000`,
		`tbdetect_node_records_deduped_total{node="n1"} 40`,
		`tbdetect_node_records_dropped_total{node="n2"} 25`,
		`tbdetect_node_records_buffered{node="n1"} 7`,
		`tbdetect_node_watermark_lag_seconds{node="n1"} 0`,
		`tbdetect_node_watermark_lag_seconds{node="n2"} 3`,
		`tbdetect_node_silence_seconds{node="n1"} 2`,
		`tbdetect_node_silence_seconds{node="n2"} 30`,
		"tbdetect_peers_rejected_total 4\n",
		`tbdetect_agent_wal_depth{node="n1"} 120`,
		`tbdetect_agent_wal_depth{node="n2"} 0`,
		`tbdetect_agent_wal_segments{node="n1"} 3`,
		`tbdetect_agent_wal_spilling{node="n1"} 1`,
		`tbdetect_agent_wal_spilling{node="n2"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
}

// TestHubDropAccounting: a full subscriber queue drops new alerts for
// that subscriber only, counted per subscriber and in the hub totals.
func TestHubDropAccounting(t *testing.T) {
	h := newHub(4)
	slow := h.subscribe()
	fast := h.subscribe()
	go func() {
		for range fast.ch { // fast consumer never overflows
		}
	}()
	for i := 0; i < 10; i++ {
		h.publish(stream.Alert{At: simnet.Time(i)})
		// Yield so the fast consumer keeps its queue drained; the slow
		// one accumulates regardless of scheduling.
		time.Sleep(time.Millisecond)
	}
	if got := slow.dropped.Load(); got != 6 {
		t.Errorf("slow subscriber dropped = %d, want 6 (queue 4, published 10)", got)
	}
	if got := fast.dropped.Load(); got != 0 {
		t.Errorf("fast subscriber dropped = %d, want 0", got)
	}
	if got := h.totalDropped.Load(); got != 6 {
		t.Errorf("hub totalDropped = %d, want 6", got)
	}
	if got := h.totalPublished.Load(); got != 10 {
		t.Errorf("hub totalPublished = %d, want 10", got)
	}
	h.closeAll()
	if h.subscribe() != nil {
		t.Error("subscribe after closeAll should return nil")
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	name string
	data string
}

func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return events
}

// waitSubscribers polls until n subscribers are registered.
func waitSubscribers(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.hub.count() != n {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber count never reached %d (now %d)", n, s.hub.count())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSSEStream: alerts published while a client is connected arrive as
// "alert" events, and shutdown terminates the stream with "end".
func TestSSEStream(t *testing.T) {
	s := fixtureServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/alerts")
	if err != nil {
		t.Fatalf("GET /alerts: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	waitSubscribers(t, s, 1)

	s.PublishAlert(fixtureAlert())
	s.PublishAlert(stream.Alert{Server: "tomcat-1", At: 11_800_000, Load: 9, TP: 120, State: core.StateCongested})
	// Closing the hub ends the stream: the body then reads to EOF.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	events := readSSE(t, resp.Body)
	if len(events) != 3 {
		t.Fatalf("got %d events %+v, want 2 alerts + end", len(events), events)
	}
	if events[0].name != "alert" || events[1].name != "alert" || events[2].name != "end" {
		t.Fatalf("event sequence = %+v", events)
	}
	var a AlertJSON
	if err := json.Unmarshal([]byte(events[0].data), &a); err != nil {
		t.Fatalf("decode alert event: %v", err)
	}
	if a.Server != "mysql-1" || a.AtMicros != 11_750_000 || !a.Freeze || a.State != "congested" {
		t.Errorf("alert payload = %+v", a)
	}

	// New subscriptions after shutdown are declined.
	resp2, err := http.Get(ts.URL + "/alerts")
	if err != nil {
		t.Fatalf("GET /alerts after shutdown: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown /alerts = %d, want 503", resp2.StatusCode)
	}
}

// TestSSEDroppedEventEmission: overflow accumulated on a subscriber is
// reported to it as a "dropped" event before the next alert.
func TestSSEDroppedEventEmission(t *testing.T) {
	s := fixtureServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/alerts")
	if err != nil {
		t.Fatalf("GET /alerts: %v", err)
	}
	defer resp.Body.Close()
	waitSubscribers(t, s, 1)

	// Mark overflow on the subscriber directly (deterministic stand-in
	// for a queue overflow; hub counting is covered above) and follow it
	// with a live alert to flush the report out.
	s.hub.mu.Lock()
	for sub := range s.hub.subs {
		sub.dropped.Add(5)
	}
	s.hub.mu.Unlock()
	s.PublishAlert(fixtureAlert())
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	events := readSSE(t, resp.Body)
	if len(events) != 3 || events[0].name != "dropped" || events[1].name != "alert" || events[2].name != "end" {
		t.Fatalf("event sequence = %+v, want dropped, alert, end", events)
	}
	var d DroppedJSON
	if err := json.Unmarshal([]byte(events[0].data), &d); err != nil {
		t.Fatalf("decode dropped event: %v", err)
	}
	if d.Dropped != 5 {
		t.Errorf("dropped = %d, want 5", d.Dropped)
	}
}

// TestSSEOverflowInvariant: whatever a slow subscriber loses is counted —
// delivered alert events plus reported drops always equal the published
// total, so loss is visible, never silent.
func TestSSEOverflowInvariant(t *testing.T) {
	s := New(Config{
		Metrics:         func() stream.Metrics { return stream.Metrics{} },
		Health:          func() []stream.ShardHealth { return nil },
		SubscriberQueue: 8,
		Now:             func() time.Time { return fixedNow },
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/alerts")
	if err != nil {
		t.Fatalf("GET /alerts: %v", err)
	}
	defer resp.Body.Close()
	waitSubscribers(t, s, 1)

	const published = 5000
	for i := 0; i < published; i++ {
		s.PublishAlert(stream.Alert{Server: "mysql-1", At: simnet.Time(i), State: core.StateCongested})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	var delivered, droppedReported int64
	for _, ev := range readSSE(t, resp.Body) {
		switch ev.name {
		case "alert":
			delivered++
		case "dropped":
			var d DroppedJSON
			if err := json.Unmarshal([]byte(ev.data), &d); err != nil {
				t.Fatalf("decode dropped event: %v", err)
			}
			droppedReported += d.Dropped
		}
	}
	if delivered+droppedReported != published {
		t.Errorf("delivered %d + dropped %d = %d, want %d (loss must be accounted)",
			delivered, droppedReported, delivered+droppedReported, published)
	}
	if hubDropped := s.hub.totalDropped.Load(); hubDropped != droppedReported {
		t.Errorf("hub totalDropped = %d, but events reported %d", hubDropped, droppedReported)
	}
}

// followVisits synthesizes a departure-ordered single-server stream that
// crosses its congestion knee, for the purity test and benchmarks.
func followVisits(n int) []trace.Visit {
	visits := make([]trace.Visit, 0, n)
	var at, busy simnet.Time
	for i := 0; i < n; i++ {
		gap := simnet.Time(400)
		if i%1000 < 250 { // periodic burst: queue builds, then drains
			gap = 40
		}
		at += gap
		start := at
		if busy > start {
			start = busy
		}
		depart := start + 2_000
		busy = depart
		visits = append(visits, trace.Visit{Server: "app-0", Class: "c", Arrive: at, Depart: depart})
	}
	return visits
}

func newTestRuntime(t testing.TB, shards int) *stream.Runtime {
	t.Helper()
	rt, err := stream.New(stream.Config{
		Online: core.OnlineOptions{
			Options:         core.Options{Interval: 50 * simnet.Millisecond},
			WindowIntervals: 64,
		},
		Shards:   shards,
		FlushLag: 20 * simnet.Millisecond,
	})
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	return rt
}

// TestServeObserverPurity runs the same ingest twice — once bare, once
// with an attached server being polled as hard as a goroutine can —
// and requires identical detection results: serving is an observer, not
// a participant.
func TestServeObserverPurity(t *testing.T) {
	run := func(attach bool) (*stream.Snapshot, stream.Metrics) {
		rt := newTestRuntime(t, 4)
		alertsDone := make(chan int)
		go func() {
			n := 0
			for range rt.Alerts() {
				n++
			}
			alertsDone <- n
		}()
		var stopPoll chan struct{}
		if attach {
			srv := New(Config{Metrics: rt.Metrics, Health: rt.ShardHealth})
			srv.SetReady(true)
			h := srv.Handler()
			stopPoll = make(chan struct{})
			go func() {
				for {
					select {
					case <-stopPoll:
						return
					default:
					}
					for _, p := range []string{"/metrics", "/healthz", "/readyz", "/report"} {
						req := httptest.NewRequest(http.MethodGet, p, nil)
						h.ServeHTTP(httptest.NewRecorder(), req)
					}
				}
			}()
			defer func() {
				srv.Shutdown(context.Background()) //nolint:errcheck
			}()
		}
		for _, v := range followVisits(20000) {
			if err := rt.Observe(v); err != nil {
				t.Fatalf("Observe: %v", err)
			}
		}
		snap := rt.Close()
		<-alertsDone
		if stopPoll != nil {
			close(stopPoll)
		}
		return snap, snap.Metrics
	}

	bare, bm := run(false)
	served, sm := run(true)
	if bm.Ingested != sm.Ingested || bm.IntervalsClosed != sm.IntervalsClosed ||
		bm.Congested != sm.Congested || bm.Freezes != sm.Freezes || bm.Dropped != sm.Dropped {
		t.Errorf("self-metrics diverge with server attached:\nbare:   %+v\nserved: %+v", bm, sm)
	}
	if len(bare.Ranking) != len(served.Ranking) {
		t.Fatalf("ranking length diverges: %d vs %d", len(bare.Ranking), len(served.Ranking))
	}
	for i := range bare.Ranking {
		b, sv := bare.Ranking[i], served.Ranking[i]
		if b.Server != sv.Server || b.CongestedIntervals != sv.CongestedIntervals ||
			b.CongestedFraction != sv.CongestedFraction {
			t.Errorf("ranking[%d] diverges: %+v vs %+v", i, b, sv)
		}
	}
}

// The benchmark pair keeps the zero-cost claim honest: attaching a live
// server must not change allocations (or time) on the ingest path.
// Handler work allocates on the *scraper's* goroutine, never the shard
// path, so the scrapes here run while the timer is stopped — hard
// concurrent polling is TestServeObserverPurity's job. Compare:
//
//	go test ./internal/serve/ -bench BenchmarkIngest -benchmem
func benchmarkIngest(b *testing.B, attach bool) {
	visits := followVisits(50000)
	scrape := func(srv *Server) {
		req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
		srv.Handler().ServeHTTP(httptest.NewRecorder(), req)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rt := newTestRuntime(b, 4)
		alertsDone := make(chan struct{})
		go func() {
			defer close(alertsDone)
			for range rt.Alerts() {
			}
		}()
		var srv *Server
		if attach {
			srv = New(Config{Metrics: rt.Metrics, Health: rt.ShardHealth})
			srv.SetReady(true)
			scrape(srv) // endpoints live against this runtime before…
		}
		b.StartTimer()
		for j := range visits {
			if err := rt.Observe(visits[j]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if attach {
			scrape(srv) // …and after the measured ingest.
		}
		rt.Close()
		<-alertsDone
		if srv != nil {
			srv.Shutdown(context.Background()) //nolint:errcheck
		}
		b.StartTimer()
	}
	b.SetBytes(int64(len(visits)))
}

func BenchmarkIngestNoServer(b *testing.B)   { benchmarkIngest(b, false) }
func BenchmarkIngestWithServer(b *testing.B) { benchmarkIngest(b, true) }
