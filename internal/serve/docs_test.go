package serve

// docs/api.md is generated-example-tested: every JSON example in it is
// tagged with an HTML comment marker (<!-- api:NAME -->) immediately
// before its fenced code block, and this test renders the same response
// from the fixture server and requires semantic equality. Change a JSON
// field in the handlers and this test fails until docs/api.md follows;
// document an example the fixtures can't produce and it fails too.
//
// To regenerate the examples after an intentional API change:
//
//	APIDOC_DUMP=1 go test ./internal/serve/ -run TestAPIDocExamples -v
//
// and paste the printed blocks into docs/api.md.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

const apiDocPath = "../../docs/api.md"

// fixtureBody renders one GET against the fully-populated fixture
// server.
func fixtureBody(t *testing.T, path string) string {
	t.Helper()
	s := fixtureServer()
	s.PublishSnapshot(fixtureSnapshot())
	s.SetReady(true)
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Body.String()
}

// apiExamples maps marker name → the authoritative response body the
// documented example must match.
func apiExamples(t *testing.T) map[string]string {
	t.Helper()
	mustJSON := func(v any) string {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatalf("marshal example: %v", err)
		}
		return string(b)
	}
	// The alert example carries the verdict annotation exactly as a live
	// subscriber would see it: looked up from the published snapshot.
	vs := fixtureServer()
	vs.PublishSnapshot(fixtureSnapshot())
	return map[string]string{
		"report":        fixtureBody(t, "/report"),
		"series":        fixtureBody(t, "/servers/mysql-1/series"),
		"healthz":       fixtureBody(t, "/healthz"),
		"readyz":        fixtureBody(t, "/readyz"),
		"series-error":  fixtureBody(t, "/servers/nosuch/series"),
		"alert-event":   mustJSON(alertJSON(fixtureAlert(), vs.verdictFor("mysql-1"))),
		"dropped-event": mustJSON(DroppedJSON{Dropped: 2}),
	}
}

// fenceRe matches a marker and its immediately following fenced block.
var fenceRe = regexp.MustCompile("(?s)<!-- api:([a-z-]+) -->\\s*```[a-z]*\n(.*?)```")

func TestAPIDocExamples(t *testing.T) {
	want := apiExamples(t)
	if os.Getenv("APIDOC_DUMP") != "" {
		for name, body := range want {
			t.Logf("<!-- api:%s -->\n```json\n%s\n```", name, strings.TrimRight(body, "\n"))
		}
	}

	doc, err := os.ReadFile(apiDocPath)
	if err != nil {
		t.Fatalf("read %s: %v", apiDocPath, err)
	}
	documented := make(map[string]string)
	for _, m := range fenceRe.FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = m[2]
	}

	for name, wantBody := range want {
		gotBody, ok := documented[name]
		if !ok {
			t.Errorf("docs/api.md has no <!-- api:%s --> example", name)
			continue
		}
		var wantV, gotV any
		if err := json.Unmarshal([]byte(wantBody), &wantV); err != nil {
			t.Fatalf("handler output for %s is not JSON: %v", name, err)
		}
		if err := json.Unmarshal([]byte(gotBody), &gotV); err != nil {
			t.Errorf("docs/api.md example %s is not valid JSON: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(wantV, gotV) {
			t.Errorf("docs/api.md example %s no longer matches real handler output\ndocumented:\n%s\nactual:\n%s",
				name, gotBody, wantBody)
		}
	}
	for name := range documented {
		if name == "metrics-excerpt" {
			continue // asserted line-by-line below
		}
		if _, ok := want[name]; !ok {
			t.Errorf("docs/api.md documents <!-- api:%s --> but the test has no authoritative rendering for it (add one to apiExamples)", name)
		}
	}

	// The /metrics excerpt is Prometheus text, not JSON: every sample
	// line documented must appear verbatim in a real scrape of the
	// fixture server.
	excerpt, ok := documented["metrics-excerpt"]
	if !ok {
		t.Fatal("docs/api.md has no <!-- api:metrics-excerpt --> example")
	}
	scrape := fixtureBody(t, "/metrics")
	for _, line := range strings.Split(excerpt, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if !strings.Contains(scrape, line+"\n") {
			t.Errorf("docs/api.md metrics excerpt line %q does not appear in a real scrape", line)
		}
	}
}

// TestDocsReachableFromReadme requires every file under docs/ to be
// linked (directly or transitively) from the README, so nothing under
// docs/ can silently orphan.
func TestDocsReachableFromReadme(t *testing.T) {
	entries, err := os.ReadDir("../../docs")
	if err != nil {
		t.Fatalf("read docs/: %v", err)
	}
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("read README.md: %v", err)
	}
	// Reachable = linked from README or from another docs page that is
	// itself reachable; one level of indirection is enough for this tree.
	corpus := string(readme)
	for _, e := range entries {
		if strings.Contains(string(readme), e.Name()) {
			b, err := os.ReadFile("../../docs/" + e.Name())
			if err != nil {
				t.Fatalf("read docs/%s: %v", e.Name(), err)
			}
			corpus += string(b)
		}
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".md") {
			continue
		}
		if !strings.Contains(corpus, e.Name()) {
			t.Errorf("docs/%s is not linked from README.md (or any page README links)", e.Name())
		}
	}
}
