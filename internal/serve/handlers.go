package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"transientbd/internal/core"
	"transientbd/internal/stream"
)

// The JSON shapes below are the public query API of tbdetect -follow
// -listen. They are documented with worked examples in docs/api.md, and
// docs_test.go asserts the documented examples against real handler
// output — change a field here and the docs test fails until the docs
// follow.

// ReportJSON is the /report response: the current merged snapshot,
// servers ranked worst-first, plus the self-metrics block at snapshot
// time.
type ReportJSON struct {
	// WatermarkMicros is the interval-closing watermark of the snapshot,
	// in microseconds of trace time.
	WatermarkMicros int64 `json:"watermark_us"`
	// PublishedUnixMilli is the wall-clock time the producer published
	// this snapshot.
	PublishedUnixMilli int64 `json:"published_unix_ms"`
	// Servers ranks every tracked server worst-first (congested fraction
	// descending, ties by name).
	Servers []ServerRankJSON `json:"servers"`
	// Causes ranks the attribution engine's root-cause verdicts over the
	// snapshot, most likely first. Empty when no server congested enough
	// to fingerprint.
	Causes []CauseJSON `json:"causes"`
	// Metrics is the runtime self-metrics block.
	Metrics MetricsJSON `json:"metrics"`
}

// CauseJSON is one ranked root-cause verdict in the /report response.
type CauseJSON struct {
	// Kind names the fingerprinted cause: "conn-pool-exhaustion",
	// "lock-convoy", "cache-stampede", "noisy-neighbor", "overload",
	// "autoscale-slow-start", "gc-pause" or "saturation".
	Kind string `json:"kind"`
	// Server is where the cause acts — for pool exhaustion, the capped
	// server itself, witnessed from its queueing callers.
	Server string `json:"server"`
	// Confidence in (0, 1] is fingerprint sharpness; Score ranks
	// verdicts across servers (congested fraction × unexplained share ×
	// confidence).
	Confidence float64 `json:"confidence"`
	Score      float64 `json:"score"`
	// Evidence is human-readable support, free of absolute timestamps.
	Evidence []string `json:"evidence"`
}

// ServerRankJSON is one server's row in the /report ranking.
type ServerRankJSON struct {
	Server string `json:"server"`
	// NStar is the congestion point (work units of concurrent load);
	// TPMaxPerSec the corresponding saturation throughput; Saturated
	// whether the window's load ever crossed the knee.
	NStar       float64 `json:"nstar"`
	TPMaxPerSec float64 `json:"tpmax_per_sec"`
	Saturated   bool    `json:"saturated"`
	// CongestedFraction is the share of window intervals classified
	// congested; CongestedIntervals the absolute count; Intervals the
	// window size in intervals; POIs the freeze count.
	CongestedFraction  float64 `json:"congested_fraction"`
	CongestedIntervals int     `json:"congested_intervals"`
	Intervals          int     `json:"intervals"`
	POIs               int     `json:"pois"`
	// WindowStartMicros and IntervalMicros anchor the window's interval
	// grid, in microseconds of trace time.
	WindowStartMicros int64 `json:"window_start_us"`
	IntervalMicros    int64 `json:"interval_us"`
}

// MetricsJSON mirrors stream.Metrics for the JSON API.
type MetricsJSON struct {
	Shards            int     `json:"shards"`
	Ingested          int64   `json:"records_ingested"`
	Dropped           int64   `json:"records_dropped"`
	Late              int64   `json:"records_late"`
	IntervalsClosed   int64   `json:"intervals_closed"`
	Congested         int64   `json:"intervals_congested"`
	Freezes           int64   `json:"freezes"`
	Reestimates       int64   `json:"nstar_reestimates"`
	QueueDepth        []int64 `json:"queue_depth"`
	Checkpoints       int64   `json:"checkpoints_written"`
	CheckpointsFailed int64   `json:"checkpoints_failed"`
	ShardRestarts     int64   `json:"shard_restarts"`
	DegradedShards    int64   `json:"degraded_shards"`
	RecordsLost       int64   `json:"records_lost"`
	AlertsLost        int64   `json:"alerts_lost"`
	WatermarkMicros   int64   `json:"watermark_us"`
	MaxDepartMicros   int64   `json:"max_depart_us"`
}

// SeriesJSON is the /servers/{id}/series response: one server's
// per-interval load/throughput/classification series over its current
// sliding window.
type SeriesJSON struct {
	Server string `json:"server"`
	// StartMicros is the first covered interval's start; IntervalMicros
	// the grid width. Interval i covers [start + i*interval, start +
	// (i+1)*interval).
	StartMicros    int64 `json:"start_us"`
	IntervalMicros int64 `json:"interval_us"`
	// NStar and TPMaxPerSec are estimated from the covered intervals.
	NStar       float64 `json:"nstar"`
	TPMaxPerSec float64 `json:"tpmax_per_sec"`
	// Load is the time-weighted concurrent-request average per interval;
	// Throughput the normalized work units per second per interval.
	Load       []float64 `json:"load"`
	Throughput []float64 `json:"throughput"`
	// States classifies each interval: "idle", "normal" or "congested".
	// POIs indexes the freeze intervals (offsets into States).
	States []string `json:"states"`
	POIs   []int    `json:"pois"`
}

// AlertJSON is the payload of one SSE "alert" event on /alerts: a
// congested monitoring interval, freeze-flagged.
type AlertJSON struct {
	Server string `json:"server"`
	// AtMicros is the interval's start time in microseconds of trace
	// time.
	AtMicros int64 `json:"at_us"`
	// Load and ThroughputPerSec are the interval's measurements.
	Load             float64 `json:"load"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	// State is the provisional classification at close time; Freeze
	// marks a congested interval with near-zero throughput (a POI).
	State  string `json:"state"`
	Freeze bool   `json:"freeze"`
	// Verdict is the server's top root-cause verdict kind from the
	// latest published snapshot (see /report causes). Omitted before the
	// first snapshot or when the server has no verdict yet.
	Verdict string `json:"verdict,omitempty"`
}

// DroppedJSON is the payload of an SSE "dropped" event: how many alerts
// this subscriber lost to queue overflow since the last event.
type DroppedJSON struct {
	Dropped int64 `json:"dropped"`
}

// HealthJSON is the /healthz response.
type HealthJSON struct {
	// Status is "ok" or "stalled".
	Status string `json:"status"`
	// Shards samples every shard.
	Shards []ShardHealthJSON `json:"shards"`
}

// ShardHealthJSON is one shard's liveness sample in /healthz.
type ShardHealthJSON struct {
	Shard int `json:"shard"`
	// Queued is the shard's queued record count; LastActiveUnixMilli the
	// wall time it last finished a message. Stalled is true when queued
	// work has outlived the staleness bound without a heartbeat.
	Queued              int64 `json:"queued"`
	LastActiveUnixMilli int64 `json:"last_active_unix_ms"`
	Stalled             bool  `json:"stalled"`
}

// ReadyJSON is the /readyz response.
type ReadyJSON struct {
	// Ready mirrors the HTTP status: true with 200, false with 503.
	Ready bool `json:"ready"`
	// Reason states why the server is not ready, when it has one —
	// "resuming" while a restarted process replays the feed prefix its
	// checkpoint already covers. Omitted when ready (and on not-ready
	// states with no stated reason, e.g. before the first SetReady).
	Reason string `json:"reason,omitempty"`
}

// ErrorJSON is every non-2xx JSON body.
type ErrorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone mid-body: nothing to do
}

func stateString(st core.IntervalState) string {
	switch st {
	case core.StateIdle:
		return "idle"
	case core.StateNormal:
		return "normal"
	case core.StateCongested:
		return "congested"
	default:
		return "unknown"
	}
}

func metricsJSON(m stream.Metrics) MetricsJSON {
	qd := m.QueueDepth
	if qd == nil {
		qd = []int64{}
	}
	return MetricsJSON{
		Shards:            m.Shards,
		Ingested:          m.Ingested,
		Dropped:           m.Dropped,
		Late:              m.Late,
		IntervalsClosed:   m.IntervalsClosed,
		Congested:         m.Congested,
		Freezes:           m.Freezes,
		Reestimates:       m.Reestimates,
		QueueDepth:        qd,
		Checkpoints:       m.Checkpoints,
		CheckpointsFailed: m.CheckpointsFailed,
		ShardRestarts:     m.ShardRestarts,
		DegradedShards:    m.DegradedShards,
		RecordsLost:       m.RecordsLost,
		AlertsLost:        m.AlertsLost,
		WatermarkMicros:   int64(m.Watermark),
		MaxDepartMicros:   int64(m.MaxDepart),
	}
}

// alertJSON converts a merged-stream alert for the SSE feed, annotated
// with the server's current top verdict kind ("" omits the field).
func alertJSON(a stream.Alert, verdict string) AlertJSON {
	return AlertJSON{
		Server:           a.Server,
		AtMicros:         int64(a.At),
		Load:             a.Load,
		ThroughputPerSec: a.TP,
		State:            stateString(a.State),
		Freeze:           a.POI,
		Verdict:          verdict,
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `tbdetect live serving layer

GET /metrics              Prometheus text-format self-metrics
GET /healthz              per-shard liveness (200 ok / 503 stalled)
GET /readyz               readiness bit (200 ready / 503 not ready)
GET /report               current merged snapshot, ranked worst-first (JSON)
GET /servers/{id}/series  one server's per-interval window series (JSON)
GET /alerts               congestion alert stream (Server-Sent Events)

See docs/api.md for the JSON shapes.
`)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := s.cfg.Now()
	health := s.cfg.Health()
	resp := HealthJSON{Status: "ok", Shards: make([]ShardHealthJSON, 0, len(health))}
	code := http.StatusOK
	for _, h := range health {
		stalled := h.Queued > 0 && now.Sub(h.LastActive) > s.cfg.StaleAfter
		if stalled {
			resp.Status = "stalled"
			code = http.StatusServiceUnavailable
		}
		resp.Shards = append(resp.Shards, ShardHealthJSON{
			Shard:               h.Shard,
			Queued:              h.Queued,
			LastActiveUnixMilli: h.LastActive.UnixMilli(),
			Stalled:             stalled,
		})
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.ready.Load() {
		writeJSON(w, http.StatusOK, ReadyJSON{Ready: true})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, ReadyJSON{Ready: false, Reason: s.readyReason()})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	pub := s.snap.Load()
	if pub == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			ErrorJSON{Error: "no snapshot published yet; the first interval may not have closed"})
		return
	}
	resp := ReportJSON{
		WatermarkMicros:    int64(pub.snap.At),
		PublishedUnixMilli: pub.at.UnixMilli(),
		Servers:            make([]ServerRankJSON, 0, len(pub.snap.Ranking)),
		Causes:             make([]CauseJSON, 0, len(pub.causes)),
		Metrics:            metricsJSON(pub.snap.Metrics),
	}
	for _, v := range pub.causes {
		resp.Causes = append(resp.Causes, CauseJSON{
			Kind:       string(v.Kind),
			Server:     v.Server,
			Confidence: v.Confidence,
			Score:      v.Score,
			Evidence:   v.Evidence,
		})
	}
	for _, ss := range pub.snap.Ranking {
		resp.Servers = append(resp.Servers, ServerRankJSON{
			Server:             ss.Server,
			NStar:              ss.NStar.NStar,
			TPMaxPerSec:        ss.NStar.TPMax,
			Saturated:          ss.NStar.Saturated,
			CongestedFraction:  ss.CongestedFraction,
			CongestedIntervals: ss.CongestedIntervals,
			Intervals:          len(ss.States),
			POIs:               len(ss.POIs),
			WindowStartMicros:  int64(ss.Start),
			IntervalMicros:     int64(ss.Interval),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	pub := s.snap.Load()
	if pub == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			ErrorJSON{Error: "no snapshot published yet; the first interval may not have closed"})
		return
	}
	for _, ss := range pub.snap.Ranking {
		if ss.Server != id {
			continue
		}
		states := make([]string, len(ss.States))
		for i, st := range ss.States {
			states[i] = stateString(st)
		}
		pois := ss.POIs
		if pois == nil {
			pois = []int{}
		}
		writeJSON(w, http.StatusOK, SeriesJSON{
			Server:         ss.Server,
			StartMicros:    int64(ss.Start),
			IntervalMicros: int64(ss.Interval),
			NStar:          ss.NStar.NStar,
			TPMaxPerSec:    ss.NStar.TPMax,
			Load:           ss.Load,
			Throughput:     ss.TP,
			States:         states,
			POIs:           pois,
		})
		return
	}
	writeJSON(w, http.StatusNotFound,
		ErrorJSON{Error: fmt.Sprintf("no series for server %q in the current snapshot", id)})
}

// handleAlerts streams congestion alerts as Server-Sent Events. Each
// alert is an "alert" event; overflow since the previous event is
// reported as a "dropped" event; shutdown ends the stream with an "end"
// event. The handler exits when the client disconnects or the hub
// closes, so http.Server.Shutdown never hangs on a subscriber.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError,
			ErrorJSON{Error: "streaming unsupported by this connection"})
		return
	}
	sub := s.hub.subscribe()
	if sub == nil {
		writeJSON(w, http.StatusServiceUnavailable, ErrorJSON{Error: "shutting down"})
		return
	}
	defer s.hub.unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": tbdetect congestion alert stream\n\n")
	fl.Flush()

	emitDropped := func() {
		if d := sub.dropped.Swap(0); d > 0 {
			data, _ := json.Marshal(DroppedJSON{Dropped: d})
			fmt.Fprintf(w, "event: dropped\ndata: %s\n\n", data)
		}
	}
	for {
		select {
		case a, open := <-sub.ch:
			if !open {
				emitDropped()
				fmt.Fprint(w, "event: end\ndata: {}\n\n")
				fl.Flush()
				return
			}
			emitDropped()
			data, _ := json.Marshal(alertJSON(a, s.verdictFor(a.Server)))
			fmt.Fprintf(w, "event: alert\ndata: %s\n\n", data)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
