package wal

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func testOpen(t *testing.T, dir string, segBytes int) (*Log, Recovery) {
	t.Helper()
	l, rec, err := Open(Options{Dir: dir, SegmentBytes: segBytes, NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func body(seq uint64) []byte {
	// Variable-length, content-checkable bodies.
	b := []byte(fmt.Sprintf("record-%d|", seq))
	for i := 0; i < int(seq%17); i++ {
		b = append(b, byte(seq+uint64(i)))
	}
	return b
}

func appendN(t *testing.T, l *Log, from, through uint64) {
	t.Helper()
	for seq := from; seq <= through; seq++ {
		if err := l.Append(seq, body(seq)); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
	}
}

func readAll(t *testing.T, l *Log) map[uint64][]byte {
	t.Helper()
	got := make(map[uint64][]byte)
	if l.Records() == 0 {
		return got
	}
	c, err := l.ReadCursor(l.FirstSeq())
	if err != nil {
		t.Fatalf("ReadCursor(%d): %v", l.FirstSeq(), err)
	}
	defer c.Close()
	for {
		seq, b, err := c.Next()
		if err == io.EOF {
			return got
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got[seq] = append([]byte(nil), b...)
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := testOpen(t, dir, 256) // small segments: force rotation
	if rec.Records != 0 || rec.TornBytes != 0 {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}
	appendN(t, l, 1, 100)
	if l.FirstSeq() != 1 || l.LastSeq() != 100 || l.Records() != 100 {
		t.Fatalf("extent = [%d,%d] n=%d", l.FirstSeq(), l.LastSeq(), l.Records())
	}
	if l.Segments() < 3 {
		t.Fatalf("expected rotation at 256-byte segments, got %d segment(s)", l.Segments())
	}
	got := readAll(t, l)
	for seq := uint64(1); seq <= 100; seq++ {
		if !bytes.Equal(got[seq], body(seq)) {
			t.Fatalf("record %d corrupted: %q", seq, got[seq])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := testOpen(t, dir, 256)
	defer l2.Close()
	if rec2.Records != 100 || rec2.FirstSeq != 1 || rec2.LastSeq != 100 || rec2.TornBytes != 0 {
		t.Fatalf("reopen recovery = %+v", rec2)
	}
	// Appends continue into the recovered tail.
	appendN(t, l2, 101, 110)
	got = readAll(t, l2)
	if len(got) != 110 || !bytes.Equal(got[110], body(110)) {
		t.Fatalf("post-reopen append lost records: %d held", len(got))
	}
}

func TestAppendContiguityEnforced(t *testing.T) {
	l, _ := testOpen(t, t.TempDir(), 0)
	defer l.Close()
	appendN(t, l, 1, 3)
	if err := l.Append(5, body(5)); err == nil {
		t.Fatal("gap append accepted")
	}
	if err := l.Append(3, body(3)); err == nil {
		t.Fatal("backward append accepted")
	}
	if err := l.Append(0, nil); err == nil {
		t.Fatal("sequence 0 accepted")
	}
}

func TestTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, 200)
	appendN(t, l, 1, 60)
	segs := l.Segments()
	if segs < 3 {
		t.Fatalf("need several segments, got %d", segs)
	}
	// Acknowledge through the middle: only whole segments go.
	removed, err := l.TruncateThrough(30)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("nothing removed")
	}
	if l.FirstSeq() > 31 {
		t.Fatalf("truncation removed unacked records: first=%d", l.FirstSeq())
	}
	got := readAll(t, l)
	for seq := uint64(31); seq <= 60; seq++ {
		if !bytes.Equal(got[seq], body(seq)) {
			t.Fatalf("record %d lost by truncation", seq)
		}
	}
	// Acknowledge everything: the log empties but the contiguity anchor
	// survives a reopen (next append must still be 61).
	if _, err := l.TruncateThrough(60); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 || l.FirstSeq() != 0 {
		t.Fatalf("not empty after full truncation: n=%d first=%d", l.Records(), l.FirstSeq())
	}
	appendN(t, l, 61, 65)
	if l.FirstSeq() != 61 || l.LastSeq() != 65 {
		t.Fatalf("extent after re-append = [%d,%d]", l.FirstSeq(), l.LastSeq())
	}
	l.Close()
	l2, rec := testOpen(t, dir, 200)
	defer l2.Close()
	if rec.FirstSeq != 61 || rec.LastSeq != 65 {
		t.Fatalf("reopen after truncation = %+v", rec)
	}
}

func TestCursorTailsAcrossAppendsAndTruncation(t *testing.T) {
	l, _ := testOpen(t, t.TempDir(), 150)
	defer l.Close()
	appendN(t, l, 1, 10)
	c, err := l.ReadCursor(1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for want := uint64(1); want <= 10; want++ {
		seq, _, err := c.Next()
		if err != nil || seq != want {
			t.Fatalf("Next = %d, %v; want %d", seq, err, want)
		}
	}
	if _, _, err := c.Next(); err != io.EOF {
		t.Fatalf("Next at end = %v; want EOF", err)
	}
	// Appends after EOF: the same cursor picks them up (spill drain).
	appendN(t, l, 11, 40)
	if _, err := l.TruncateThrough(10); err != nil {
		t.Fatal(err)
	}
	for want := uint64(11); want <= 40; want++ {
		seq, b, err := c.Next()
		if err != nil || seq != want {
			t.Fatalf("tailing Next = %d, %v; want %d", seq, err, want)
		}
		if !bytes.Equal(b, body(want)) {
			t.Fatalf("tailing record %d corrupted", want)
		}
	}
}

// TestTornFinalRecordDiscarded is the crash-mid-write property: for
// every possible cut point inside the final record's frame, reopening
// discards exactly that record, keeps every earlier one, and appends
// resume cleanly at the discarded sequence.
func TestTornFinalRecordDiscarded(t *testing.T) {
	const n = 12
	// Build a reference log once to learn the final frame's extent.
	refDir := t.TempDir()
	ref, _ := testOpen(t, refDir, 1<<20) // one segment
	appendN(t, ref, 1, n)
	ref.Close()
	segs, err := filepath.Glob(filepath.Join(refDir, "*"+segSuffix))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	whole, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Find the last frame's start by replaying lengths.
	off := 0
	lastStart := 0
	for off < len(whole) {
		lastStart = off
		plen := int(uint32(whole[off])<<24 | uint32(whole[off+1])<<16 | uint32(whole[off+2])<<8 | uint32(whole[off+3]))
		off += 4 + plen + 4
	}
	if off != len(whole) {
		t.Fatalf("frame walk out of sync: %d != %d", off, len(whole))
	}

	for cut := lastStart + 1; cut < len(whole); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec := testOpen(t, dir, 1<<20)
		if rec.Records != n-1 || rec.LastSeq != n-1 {
			t.Fatalf("cut@%d: recovery = %+v; want %d whole records", cut, rec, n-1)
		}
		if rec.TornBytes != int64(cut-lastStart) {
			t.Fatalf("cut@%d: TornBytes = %d; want %d", cut, rec.TornBytes, cut-lastStart)
		}
		// The discarded sequence is re-appendable: the tear left no trace.
		if err := l.Append(n, body(n)); err != nil {
			t.Fatalf("cut@%d: re-append after tear: %v", cut, err)
		}
		got := readAll(t, l)
		for seq := uint64(1); seq <= n; seq++ {
			if !bytes.Equal(got[seq], body(seq)) {
				t.Fatalf("cut@%d: record %d wrong after recovery", cut, seq)
			}
		}
		l.Close()
		// Second open is clean: recovery truncated physically.
		l2, rec2 := testOpen(t, dir, 1<<20)
		if rec2.TornBytes != 0 || rec2.Records != n {
			t.Fatalf("cut@%d: second recovery not clean: %+v", cut, rec2)
		}
		l2.Close()
	}
}

// TestCorruptMidSegmentTruncatesTail: a flipped byte in the middle of a
// segment costs the records from that frame on — never the ones before.
func TestCorruptMidSegmentTruncatesTail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		dir := t.TempDir()
		l, _ := testOpen(t, dir, 1<<20)
		appendN(t, l, 1, 30)
		l.Close()
		seg := filepath.Join(dir, segName(1))
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		i := rng.Intn(len(raw))
		raw[i] ^= 0x40
		if err := os.WriteFile(seg, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec := testOpen(t, dir, 1<<20)
		if rec.Records >= 30 {
			// The flip may hit a body byte whose CRC catches it, or a
			// header; either way at least the containing record dies.
			t.Fatalf("trial %d: corruption at byte %d survived: %+v", trial, i, rec)
		}
		got := readAll(t, l2)
		for seq := uint64(1); seq <= rec.LastSeq; seq++ {
			if !bytes.Equal(got[seq], body(seq)) {
				t.Fatalf("trial %d: surviving record %d corrupted", trial, seq)
			}
		}
		l2.Close()
	}
}

// FuzzWALReplay feeds arbitrary bytes in as a segment file: Open must
// never panic, must report a self-consistent extent, and the log must
// accept appends afterward and reopen cleanly.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a wal segment at all"))
	// A well-formed two-record segment as a seed.
	seedDir := f.TempDir()
	l, _, err := Open(Options{Dir: seedDir, NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	l.Append(1, []byte("alpha"))
	l.Append(2, []byte("beta"))
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(seedDir, "*"+segSuffix))
	if len(segs) == 1 {
		if raw, err := os.ReadFile(segs[0]); err == nil {
			f.Add(raw)
			f.Add(raw[:len(raw)-3]) // torn tail
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		l, rec, err := Open(Options{Dir: dir, NoSync: true})
		if err != nil {
			t.Fatalf("Open on fuzz data errored (should recover): %v", err)
		}
		if rec.Records > 0 && uint64(rec.Records) != rec.LastSeq-rec.FirstSeq+1 {
			t.Fatalf("inconsistent extent: %+v", rec)
		}
		// Replay resumes from the last whole frame: every surviving
		// record must read back, and the next contiguous append must
		// succeed.
		if rec.Records > 0 {
			c, err := l.ReadCursor(rec.FirstSeq)
			if err != nil {
				t.Fatalf("cursor over recovered log: %v", err)
			}
			n := 0
			for {
				_, _, err := c.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("read recovered record: %v", err)
				}
				n++
			}
			c.Close()
			if n != rec.Records {
				t.Fatalf("recovered %d records, cursor read %d", rec.Records, n)
			}
		}
		if l.LastSeq() == ^uint64(0) {
			l.Close()
			t.Skip("recovered sequence at uint64 max; no contiguous append exists")
		}
		if err := l.Append(l.LastSeq()+1, []byte("after-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		l.Close()
		l2, rec2, err := Open(Options{Dir: dir, NoSync: true})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if rec2.TornBytes != 0 {
			t.Fatalf("second open found torn bytes (truncation not physical): %+v", rec2)
		}
		if rec2.Records != rec.Records+1 {
			t.Fatalf("append lost across reopen: %d -> %d", rec.Records, rec2.Records)
		}
		l2.Close()
	})
}
