// Package wal is a segment-rotated, CRC-framed write-ahead log of
// sequence-numbered records: the durability layer under the trace
// agent's send ring (internal/agent). Every batch the agent cuts is
// appended here before it is offered to the network, so a head outage
// longer than the in-memory send window spills to disk instead of
// stalling ingest, and a `kill -9` of the agent loses nothing the log
// has fsynced.
//
// # On-disk format
//
// A log is a directory of segment files named by the sequence number of
// their first record (zero-padded, so lexical order is log order):
//
//	0000000000000000000001.seg
//	0000000000000000000618.seg
//
// Each segment is a concatenation of records framed exactly like the
// wire protocol frames they protect:
//
//	[4 bytes big-endian payload length] [payload] [4 bytes CRC-32 (IEEE) over payload]
//	payload = uvarint sequence number + opaque record body
//
// Sequence numbers are strictly contiguous (each append must be the
// predecessor's +1), which is what lets Open distinguish "clean log"
// from "corrupt log" without any index: the one legal irregularity is a
// torn final record from a crash mid-write, and Open truncates it.
//
// # Crash safety
//
// Appends are single write(2) calls followed (by default) by fsync, so
// a record is either wholly present or wholly absent after a process
// kill; a record cut mid-write by an OS crash fails its length or CRC
// check and is discarded by the next Open, which physically truncates
// the segment back to the last whole frame. Truncation by
// acknowledgment (TruncateThrough) removes only whole segments, so it
// can never tear a record either.
//
// A Log is NOT goroutine-safe: the agent's single run loop owns it.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// MaxRecordSize bounds a record payload (sequence varint + body), so a
// corrupt length prefix cannot make Open allocate unbounded memory. It
// matches the wire protocol's MaxFrameSize — WAL records hold encoded
// wire batches.
const MaxRecordSize = 1 << 20

const segSuffix = ".seg"

// Options configures Open.
type Options struct {
	// Dir is the log directory; created if missing.
	Dir string
	// SegmentBytes is the rotation threshold: a segment that has grown
	// past it is closed and the next append starts a new one. Default
	// 4 MiB.
	SegmentBytes int
	// NoSync skips the per-append fsync. Appends remain atomic against
	// a process kill (they are single write calls); an OS crash may
	// lose the unsynced tail. Tests use it for speed.
	NoSync bool
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Segments and Records count what survived validation. FirstSeq and
	// LastSeq bound the surviving records (both zero when the log is
	// empty).
	Segments int
	Records  int
	FirstSeq uint64
	LastSeq  uint64
	// TornBytes counts bytes discarded from the log's tail: a record
	// torn by a crash mid-write, trailing corruption, or segments left
	// unreachable behind a tear. Zero on a clean open.
	TornBytes int64
}

type segment struct {
	path  string
	first uint64 // sequence of the first record
	last  uint64 // sequence of the last record (first-1 while empty)
	size  int64
}

// Log is an open write-ahead log. Not goroutine-safe.
type Log struct {
	opts Options
	segs []segment
	cur  *os.File // active tail segment file (nil until needed)

	firstSeq uint64 // 0 when empty
	lastSeq  uint64 // survives emptiness: the contiguity anchor for appends
	records  int

	scratch []byte // reused append frame
}

// Open scans dir (creating it if missing), validates every record, and
// truncates any torn tail so appends resume after the last whole frame.
func Open(opts Options) (*Log, Recovery, error) {
	if opts.Dir == "" {
		return nil, Recovery{}, errors.New("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	l := &Log{opts: opts}
	var rec Recovery
	damaged := false // a tear ends the log: later segments are unreachable
	for _, name := range names {
		path := filepath.Join(opts.Dir, name)
		if damaged {
			if fi, err := os.Stat(path); err == nil {
				rec.TornBytes += fi.Size()
			}
			if err := os.Remove(path); err != nil {
				return nil, Recovery{}, fmt.Errorf("wal: drop unreachable segment: %w", err)
			}
			continue
		}
		seg, torn, err := scanSegment(path, l.lastSeq, l.records > 0)
		if err != nil {
			return nil, Recovery{}, err
		}
		rec.TornBytes += torn
		if torn > 0 {
			damaged = true
		}
		if seg.size == 0 {
			// Nothing valid in it (empty file, corrupt from byte zero, or
			// contiguity broken at its first record).
			if err := os.Remove(path); err != nil {
				return nil, Recovery{}, fmt.Errorf("wal: drop empty segment: %w", err)
			}
			continue
		}
		if l.records == 0 {
			l.firstSeq = seg.first
		}
		l.lastSeq = seg.last
		l.records += int(seg.last - seg.first + 1)
		l.segs = append(l.segs, seg)
	}
	rec.Segments = len(l.segs)
	rec.Records = l.records
	rec.FirstSeq = l.firstSeq
	rec.LastSeq = l.lastSeq
	return l, rec, nil
}

// scanSegment validates one segment, physically truncating it to the
// last whole, contiguous record. prevSeq/havePrev anchor cross-segment
// contiguity. Returns the surviving extent and the bytes truncated.
func scanSegment(path string, prevSeq uint64, havePrev bool) (segment, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return segment{}, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return segment{}, 0, fmt.Errorf("wal: %w", err)
	}
	size := fi.Size()

	seg := segment{path: path}
	r := &segmentReader{f: f}
	for {
		seq, _, err := r.next()
		if err != nil {
			// io.EOF is the clean end; anything else is a torn or corrupt
			// frame — either way the valid prefix ends at r.off.
			break
		}
		if seg.size == 0 {
			if havePrev && seq != prevSeq+1 {
				// First record does not continue the previous segment: the
				// file is stale garbage (e.g. leftover from an interrupted
				// cleanup). Nothing in it is reachable.
				break
			}
			seg.first = seq
		} else if seq != seg.last+1 {
			break // contiguity broken mid-segment: truncate here
		}
		seg.last = seq
		seg.size = r.off
	}
	torn := size - seg.size
	if torn > 0 {
		if err := f.Truncate(seg.size); err != nil {
			return segment{}, 0, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return segment{}, 0, fmt.Errorf("wal: %w", err)
		}
	}
	return seg, torn, nil
}

// segmentReader walks records in one segment file, tracking the offset
// of the next unread frame so callers know the valid-prefix boundary.
type segmentReader struct {
	f   *os.File
	off int64 // offset of the next unread frame (updated on success only)
	buf []byte
}

// next reads one record. io.EOF means a clean segment end; any framing
// violation (short read, oversized length, CRC mismatch, bad sequence
// varint) is a distinct error, with r.off still at the broken frame's
// start. The returned body aliases r.buf until the following next.
func (r *segmentReader) next() (uint64, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.f, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wal: torn header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > MaxRecordSize {
		return 0, nil, fmt.Errorf("wal: absurd record length %d", n)
	}
	if cap(r.buf) < int(n)+4 {
		r.buf = make([]byte, n+4)
	}
	r.buf = r.buf[:n+4]
	if _, err := io.ReadFull(r.f, r.buf); err != nil {
		return 0, nil, fmt.Errorf("wal: torn record: %w", err)
	}
	payload := r.buf[:n]
	if binary.BigEndian.Uint32(r.buf[n:]) != crc32.ChecksumIEEE(payload) {
		return 0, nil, errors.New("wal: record CRC mismatch")
	}
	seq, vn := binary.Uvarint(payload)
	if vn <= 0 || seq == 0 {
		return 0, nil, errors.New("wal: malformed record sequence")
	}
	r.off += int64(4 + len(r.buf))
	return seq, payload[vn:], nil
}

// seek positions the reader at the frame holding seq, scanning from the
// current position. The frame is not consumed.
func (r *segmentReader) seek(seq uint64) error {
	for {
		start := r.off
		s, _, err := r.next()
		if err != nil {
			return fmt.Errorf("wal: seek %d: %w", seq, err)
		}
		if s == seq {
			if _, err := r.f.Seek(start, io.SeekStart); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			r.off = start
			return nil
		}
		if s > seq {
			return fmt.Errorf("wal: seek overshot %d at %d", seq, s)
		}
	}
}

// FirstSeq returns the oldest record's sequence (0 when empty).
func (l *Log) FirstSeq() uint64 { return l.firstSeq }

// LastSeq returns the newest record's sequence ever appended. It
// survives the log becoming empty by truncation, anchoring append
// contiguity.
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// Records returns the number of records currently held.
func (l *Log) Records() int { return l.records }

// Segments returns the number of on-disk segment files.
func (l *Log) Segments() int { return len(l.segs) }

func segName(seq uint64) string {
	return fmt.Sprintf("%022d%s", seq, segSuffix)
}

// Append durably adds one record. seq must be LastSeq+1 when the log
// has ever held a record (contiguity is the recovery invariant); the
// very first append sets the origin. The body is copied to disk before
// Append returns.
func (l *Log) Append(seq uint64, body []byte) error {
	if seq == 0 {
		return errors.New("wal: sequence 0 is reserved")
	}
	if l.lastSeq != 0 && seq != l.lastSeq+1 {
		return fmt.Errorf("wal: non-contiguous append: have %d, got %d", l.lastSeq, seq)
	}
	if err := l.tailForAppend(seq); err != nil {
		return err
	}
	// Frame: [len][uvarint seq + body][crc].
	l.scratch = append(l.scratch[:0], 0, 0, 0, 0)
	l.scratch = binary.AppendUvarint(l.scratch, seq)
	l.scratch = append(l.scratch, body...)
	payload := l.scratch[4:]
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecordSize", len(payload))
	}
	binary.BigEndian.PutUint32(l.scratch[:4], uint32(len(payload)))
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	l.scratch = append(l.scratch, crc[:]...)
	if _, err := l.cur.Write(l.scratch); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.cur.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	seg := &l.segs[len(l.segs)-1]
	seg.last = seq
	seg.size += int64(len(l.scratch))
	l.lastSeq = seq
	if l.records == 0 {
		l.firstSeq = seq
	}
	l.records++
	return nil
}

// tailForAppend ensures l.cur is an open segment with room: the
// recovered tail (re-opened lazily), or a fresh segment whose first
// record will be seq.
func (l *Log) tailForAppend(seq uint64) error {
	if n := len(l.segs); n > 0 && l.segs[n-1].size < int64(l.opts.SegmentBytes) {
		if l.cur == nil {
			f, err := os.OpenFile(l.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			l.cur = f
		}
		return nil
	}
	// Rotate: close the full tail (if open) and start a new segment.
	if l.cur != nil {
		if err := l.cur.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.cur = nil
	}
	path := filepath.Join(l.opts.Dir, segName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.segs = append(l.segs, segment{path: path, first: seq, last: seq - 1})
	l.cur = f
	return nil
}

// TruncateThrough removes whole segments every record of which has
// sequence ≤ seq — the acknowledgment-driven cleanup. Records above seq
// are never touched (removal is whole-segment, so the newest segment
// usually survives until rotation moves past it). Returns the number of
// segments removed.
func (l *Log) TruncateThrough(seq uint64) (int, error) {
	removed := 0
	for len(l.segs) > 0 && l.segs[0].last >= l.segs[0].first && l.segs[0].last <= seq {
		s := l.segs[0]
		if len(l.segs) == 1 && l.cur != nil {
			// Dropping the active tail: release its handle first.
			if err := l.cur.Close(); err != nil {
				return removed, fmt.Errorf("wal: %w", err)
			}
			l.cur = nil
		}
		if err := os.Remove(s.path); err != nil {
			return removed, fmt.Errorf("wal: %w", err)
		}
		l.segs = l.segs[1:]
		l.records -= int(s.last - s.first + 1)
		removed++
	}
	if l.records == 0 {
		l.firstSeq = 0
	} else {
		l.firstSeq = l.segs[0].first
	}
	return removed, nil
}

// Close releases the active segment file. The log remains valid on
// disk; Open resumes it.
func (l *Log) Close() error {
	if l.cur == nil {
		return nil
	}
	err := l.cur.Close()
	l.cur = nil
	return err
}

// Cursor reads records in sequence order. It holds its own file
// handles, so reads never disturb the append position; because the
// owner serializes reads and appends (the agent's single run loop), a
// cursor never observes a partial frame.
type Cursor struct {
	l    *Log
	segi int
	next uint64
	r    segmentReader
}

// ReadCursor positions a cursor so its first Next returns the record
// with sequence seq, which must currently be in the log. Seeking scans
// the containing segment from its start — cheap at segment sizes, and
// cursors are recreated rarely (reconnect fast-forward, spill-drain
// start).
func (l *Log) ReadCursor(seq uint64) (*Cursor, error) {
	c := &Cursor{l: l, next: seq, segi: -1}
	for i := range l.segs {
		s := &l.segs[i]
		if seq >= s.first && seq <= s.last {
			c.segi = i
			break
		}
	}
	if c.segi < 0 {
		return nil, fmt.Errorf("wal: sequence %d not in log [%d, %d]", seq, l.firstSeq, l.lastSeq)
	}
	if err := c.openSeg(); err != nil {
		return nil, err
	}
	if err := c.r.seek(seq); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func (c *Cursor) openSeg() error {
	if c.r.f != nil {
		c.r.f.Close()
	}
	f, err := os.Open(c.l.segs[c.segi].path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	c.r = segmentReader{f: f}
	return nil
}

// Next returns the next record in sequence order, or io.EOF once past
// the newest record appended so far (a later Next after more appends
// continues — the spill-drain pattern). The returned body aliases an
// internal buffer valid until the following Next.
func (c *Cursor) Next() (uint64, []byte, error) {
	if c.next > c.l.lastSeq || c.l.records == 0 {
		return 0, nil, io.EOF
	}
	for {
		seq, body, err := c.r.next()
		if err == io.EOF {
			// End of this segment: the record must be in a later one. The
			// segment index may have shifted under truncation, so re-find
			// the segment holding c.next.
			found := -1
			for i := range c.l.segs {
				s := &c.l.segs[i]
				if c.next >= s.first && c.next <= s.last {
					found = i
					break
				}
			}
			if found < 0 {
				return 0, nil, io.EOF
			}
			c.segi = found
			if err := c.openSeg(); err != nil {
				return 0, nil, err
			}
			continue
		}
		if err != nil {
			return 0, nil, err
		}
		if seq != c.next {
			return 0, nil, fmt.Errorf("wal: cursor wanted %d, read %d", c.next, seq)
		}
		c.next = seq + 1
		return seq, body, nil
	}
}

// Close releases the cursor's file handle. The cursor's Log is not
// affected.
func (c *Cursor) Close() error {
	if c.r.f == nil {
		return nil
	}
	err := c.r.f.Close()
	c.r.f = nil
	return err
}
