package merge

import (
	"sort"
	"sync"
	"testing"
	"time"

	"transientbd/internal/chaos"
	"transientbd/internal/core"
	"transientbd/internal/simnet"
	"transientbd/internal/stream"
	"transientbd/internal/trace"
)

// testClock is an injectable wall clock the degrade tests advance by hand,
// so heartbeat-timeout behavior is deterministic instead of sleep-based.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock { return &testClock{now: time.Unix(1000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// testServiceTimes matches the chaos.Workload class mix, so streaming and
// batch paths normalize identically (the calibrated-table condition for
// bit-equivalence).
var testServiceTimes = core.ServiceTimes{
	"small": 2 * simnet.Millisecond,
	"mid":   4 * simnet.Millisecond,
	"big":   8 * simnet.Millisecond,
}

// testConfig is a merge head tuned for the unit tests: a window covering
// any test trace, calibrated normalization, and an injected clock.
func testConfig(clock *testClock, expect ...string) Config {
	return Config{
		Stream: stream.Config{
			Online: core.OnlineOptions{
				Options:         core.Options{Interval: 50 * simnet.Millisecond},
				WindowIntervals: 24000, // 20 min: covers every test trace
				ServiceTimes:    testServiceTimes,
			},
		},
		FlushLag:         300 * simnet.Millisecond,
		ExpectNodes:      expect,
		HeartbeatTimeout: 5 * time.Second,
		Now:              clock.Now,
	}
}

// drainAlerts consumes a head's alert stream into a slice, returning a
// wait func that blocks until the channel closes.
func drainAlerts(c *Core) (*[]stream.Alert, func()) {
	var alerts []stream.Alert
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range c.Alerts() {
			alerts = append(alerts, a)
		}
	}()
	return &alerts, func() { <-done }
}

// byDepart sorts visits the way a per-host tracer delivers them.
func byDepart(vs []trace.Visit) []trace.Visit {
	out := append([]trace.Visit(nil), vs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Depart < out[j].Depart })
	return out
}

// partitionByServer splits a workload into per-node feeds, each node
// owning a disjoint server subset — the per-host capture shape.
func partitionByServer(vs []trace.Visit, nodes map[string]string) map[string][]trace.Visit {
	out := make(map[string][]trace.Visit)
	for _, v := range vs {
		n := nodes[v.Server]
		out[n] = append(out[n], v)
	}
	for n, f := range out {
		out[n] = byDepart(f)
	}
	return out
}

// toBatches slices a feed into sequence-numbered batches of size k.
func toBatches(feed []trace.Visit, k int) [][]trace.Visit {
	var batches [][]trace.Visit
	for len(feed) > 0 {
		n := k
		if n > len(feed) {
			n = len(feed)
		}
		batches = append(batches, feed[:n])
		feed = feed[n:]
	}
	return batches
}

func TestCoreDedupAndGap(t *testing.T) {
	clock := newTestClock()
	c, err := New(testConfig(clock, "n1"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, wait := drainAlerts(c)
	defer wait()
	defer c.Finish()

	vs := byDepart(chaos.Workload([]string{"a"}, 50, 1))
	batches := toBatches(vs, 10)

	if got := c.Admit("n1", 1); got != 0 {
		t.Fatalf("fresh node resume cursor = %d, want 0", got)
	}
	for i, b := range batches {
		ack, err := c.Batch("n1", uint64(i+1), b)
		if err != nil {
			t.Fatalf("batch %d: %v", i+1, err)
		}
		if ack != uint64(i+1) {
			t.Fatalf("batch %d acked %d", i+1, ack)
		}
	}
	// Retransmission: every batch again, must ack without re-applying.
	for i, b := range batches {
		ack, err := c.Batch("n1", uint64(i+1), b)
		if err != nil {
			t.Fatalf("retransmit %d: %v", i+1, err)
		}
		if ack != uint64(len(batches)) {
			t.Fatalf("retransmit %d acked %d, want %d", i+1, ack, len(batches))
		}
	}
	st := c.NodeStatuses()[0]
	if st.Delivered != int64(len(vs)) {
		t.Errorf("delivered %d, want %d", st.Delivered, len(vs))
	}
	if st.Deduped != int64(len(vs)) {
		t.Errorf("deduped %d, want %d (full retransmission)", st.Deduped, len(vs))
	}
	// A gap is a protocol error (the transport must close the connection).
	if _, err := c.Batch("n1", uint64(len(batches)+2), batches[0]); err == nil {
		t.Errorf("sequence gap accepted")
	}
	// A fresh head accepts a node's first batch past 1 only where the
	// handshake declared the ring begins (head restarted cold; the agent's
	// window starts at 17). One past the declared start means a batch was
	// lost in transit — accepting it would make the loss permanent.
	if got := c.Admit("n2", 17); got != 0 {
		t.Fatalf("unexpected resume cursor %d for new node", got)
	}
	if _, err := c.Batch("n2", 18, batches[0]); err == nil {
		t.Errorf("first batch at seq 18 accepted with declared ring start 17 (a lost batch would be skipped forever)")
	}
	if _, err := c.Batch("n2", 17, batches[0]); err != nil {
		t.Errorf("first batch at declared ring start 17 rejected: %v", err)
	}
}

func TestCoreBarrierWaitsForExpectedNodes(t *testing.T) {
	clock := newTestClock()
	c, err := New(testConfig(clock, "n1", "n2"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, wait := drainAlerts(c)
	defer wait()
	defer c.Finish()

	vs := byDepart(chaos.Workload([]string{"a"}, 200, 2))
	c.Admit("n1", 1)
	if _, err := c.Batch("n1", 1, vs); err != nil {
		t.Fatalf("batch: %v", err)
	}
	// n2 has not delivered anything: its watermark holds W at zero.
	if got := c.Released(); got != 0 {
		t.Fatalf("release point %v advanced before every expected node delivered", got)
	}
	c.Admit("n2", 1)
	if _, err := c.Heartbeat("n2", vs[len(vs)-1].Depart); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	if got := c.Released(); got == 0 {
		t.Fatalf("release point did not advance after both nodes delivered")
	}
}

func TestCoreDegradeReadmitDropAccounting(t *testing.T) {
	clock := newTestClock()
	cfg := testConfig(clock, "n1", "n2")
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, wait := drainAlerts(c)

	all := chaos.Workload([]string{"a", "b"}, 4000, 3)
	feeds := partitionByServer(all, map[string]string{"a": "n1", "b": "n2"})
	f1, f2 := feeds["n1"], feeds["n2"]
	c.Admit("n1", 1)
	c.Admit("n2", 1)

	// n2 delivers only a prefix, then goes silent (partitioned).
	cut := len(f2) / 4
	if _, err := c.Batch("n2", 1, f2[:cut]); err != nil {
		t.Fatalf("n2 prefix: %v", err)
	}
	// n1 delivers everything.
	for i, b := range toBatches(f1, 256) {
		clock.Advance(10 * time.Millisecond) // keeps n1 live across the sweep below
		if _, err := c.Batch("n1", uint64(i+1), b); err != nil {
			t.Fatalf("n1 batch %d: %v", i+1, err)
		}
	}
	finalN1 := uint64(len(toBatches(f1, 256)))

	// The barrier is wedged on n2's stale watermark.
	wedged := c.Released()
	if wedged >= f1[len(f1)-1].Depart {
		t.Fatalf("barrier advanced past a silent node's watermark")
	}

	// Heartbeat-timeout sweep: n2 has been silent past the timeout (n1's
	// batches above kept its own lastFrame fresh).
	clock.Advance(cfg.HeartbeatTimeout + time.Second)
	if _, err := c.Heartbeat("n1", f1[len(f1)-1].Depart); err != nil {
		t.Fatalf("n1 heartbeat: %v", err)
	}
	deg := c.Tick()
	if len(deg) != 1 || deg[0] != "n2" {
		t.Fatalf("Tick degraded %v, want [n2]", deg)
	}
	if c.Degrades() != 1 {
		t.Errorf("Degrades() = %d, want 1", c.Degrades())
	}
	// With n2 degraded the healthy node's watermark releases the barrier.
	released := c.Released()
	if released <= wedged {
		t.Fatalf("degrade did not unwedge the barrier (released %v, wedged %v)", released, wedged)
	}

	// n2 returns and replays its stream from the last acked batch. Its
	// records behind the release point must drop — with exact accounting —
	// and the ones ahead of it must be applied.
	c.Admit("n2", 1)
	var expectDrops int64
	for _, v := range f2[cut:] {
		if v.Depart <= released {
			expectDrops++
		}
	}
	if expectDrops == 0 {
		t.Fatalf("degenerate schedule: no n2 records behind the release point")
	}
	for i, b := range toBatches(f2[cut:], 256) {
		if _, err := c.Batch("n2", uint64(i+2), b); err != nil {
			t.Fatalf("n2 replay batch %d: %v", i+2, err)
		}
	}
	finalN2 := uint64(len(toBatches(f2[cut:], 256)) + 1)

	var st NodeStatus
	for _, s := range c.NodeStatuses() {
		if s.Node == "n2" {
			st = s
		}
	}
	if st.Degraded {
		t.Errorf("n2 still degraded after re-admission")
	}
	if st.Dropped != expectDrops {
		t.Errorf("n2 dropped %d, want exactly %d (computed from the release point)", st.Dropped, expectDrops)
	}

	if err := c.EOF("n1", finalN1); err != nil {
		t.Fatalf("n1 eof: %v", err)
	}
	if c.Done() {
		t.Fatalf("Done before every node reached EOF")
	}
	if err := c.EOF("n2", finalN2); err != nil {
		t.Fatalf("n2 eof: %v", err)
	}
	if !c.Done() {
		t.Fatalf("Done false with every node at EOF")
	}
	c.Finish()
	wait()

	// Global accounting: everything not dropped was observed by the runtime.
	m := c.Metrics()
	want := int64(len(all)) - expectDrops
	if m.Ingested != want {
		t.Errorf("runtime ingested %d, want %d (total %d - dropped %d)",
			m.Ingested, want, len(all), expectDrops)
	}
}

// TestCoreNodeCountEquivalence: the same workload fed as one node or as
// three server-partitioned nodes must produce a field-identical alert
// stream and final snapshot — the node-barrier determinism the package
// comment promises (the full matrix lives in equivalence_test.go).
func TestCoreNodeCountEquivalence(t *testing.T) {
	all := chaos.Workload([]string{"a", "b", "c"}, 6000, 7)

	run := func(feeds map[string][]trace.Visit) ([]stream.Alert, *stream.Snapshot) {
		clock := newTestClock()
		names := make([]string, 0, len(feeds))
		for n := range feeds {
			names = append(names, n)
		}
		sort.Strings(names)
		c, err := New(testConfig(clock, names...))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		alerts, wait := drainAlerts(c)
		type cursor struct {
			node    string
			batches [][]trace.Visit
			next    int
		}
		var cur []*cursor
		for _, n := range names {
			c.Admit(n, 1)
			cur = append(cur, &cursor{node: n, batches: toBatches(feeds[n], 97)})
		}
		// Interleave deliveries round-robin so the barrier advances in
		// small steps with nodes at different depths.
		for {
			progressed := false
			for _, cu := range cur {
				if cu.next >= len(cu.batches) {
					continue
				}
				if _, err := c.Batch(cu.node, uint64(cu.next+1), cu.batches[cu.next]); err != nil {
					t.Fatalf("node %s batch %d: %v", cu.node, cu.next+1, err)
				}
				cu.next++
				progressed = true
			}
			if !progressed {
				break
			}
		}
		for _, cu := range cur {
			if err := c.EOF(cu.node, uint64(len(cu.batches))); err != nil {
				t.Fatalf("node %s eof: %v", cu.node, err)
			}
		}
		snap := c.Finish()
		wait()
		return *alerts, snap
	}

	oneAlerts, oneSnap := run(map[string][]trace.Visit{"solo": byDepart(all)})
	threeAlerts, threeSnap := run(partitionByServer(all, map[string]string{"a": "n1", "b": "n2", "c": "n3"}))

	if len(oneAlerts) == 0 {
		t.Fatalf("no alerts from the single-node run")
	}
	if len(oneAlerts) != len(threeAlerts) {
		t.Fatalf("alert count: 1 node %d, 3 nodes %d", len(oneAlerts), len(threeAlerts))
	}
	for i := range oneAlerts {
		if oneAlerts[i] != threeAlerts[i] {
			t.Fatalf("alert %d differs: 1 node %+v, 3 nodes %+v", i, oneAlerts[i], threeAlerts[i])
		}
	}
	compareSnapshots(t, oneSnap, threeSnap)
}

// compareSnapshots asserts two final snapshots agree field-for-field on
// every ranked server.
func compareSnapshots(t *testing.T, want, got *stream.Snapshot) {
	t.Helper()
	if len(want.Ranking) != len(got.Ranking) {
		t.Fatalf("ranking length %d vs %d", len(want.Ranking), len(got.Ranking))
	}
	for i := range want.Ranking {
		w, g := want.Ranking[i], got.Ranking[i]
		if w.Server != g.Server {
			t.Errorf("rank %d: %q vs %q", i, w.Server, g.Server)
			continue
		}
		if w.NStar.NStar != g.NStar.NStar || w.NStar.TPMax != g.NStar.TPMax ||
			w.CongestedFraction != g.CongestedFraction ||
			w.CongestedIntervals != g.CongestedIntervals {
			t.Errorf("%s: N*/congestion (%v, %v, %d) vs (%v, %v, %d)", w.Server,
				w.NStar.NStar, w.CongestedFraction, w.CongestedIntervals,
				g.NStar.NStar, g.CongestedFraction, g.CongestedIntervals)
		}
		if len(w.States) != len(g.States) {
			t.Errorf("%s: states length %d vs %d", w.Server, len(w.States), len(g.States))
			continue
		}
		for j := range w.States {
			if w.States[j] != g.States[j] {
				t.Errorf("%s: state[%d] %v vs %v", w.Server, j, w.States[j], g.States[j])
				break
			}
		}
	}
}

func TestCoreRejectsMisconfiguration(t *testing.T) {
	if _, err := New(Config{Stream: stream.Config{Resume: true}}); err == nil {
		t.Errorf("Stream.Resume accepted")
	}
	if _, err := New(Config{Stream: stream.Config{FlushLag: simnet.Second}}); err == nil {
		t.Errorf("Stream.FlushLag accepted")
	}
}

func TestCoreEOFSequenceMismatch(t *testing.T) {
	clock := newTestClock()
	c, err := New(testConfig(clock, "n1"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, wait := drainAlerts(c)
	defer wait()
	defer c.Finish()
	c.Admit("n1", 1)
	vs := byDepart(chaos.Workload([]string{"a"}, 20, 5))
	if _, err := c.Batch("n1", 1, vs); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if err := c.EOF("n1", 3); err == nil {
		t.Errorf("goodbye with unapplied batches accepted")
	}
	if err := c.EOF("n1", 1); err != nil {
		t.Errorf("correct goodbye rejected: %v", err)
	}
}
