package merge

import (
	"bytes"
	"context"
	"errors"
	"net"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"transientbd/internal/agent"
	"transientbd/internal/chaos"
	"transientbd/internal/core"
	"transientbd/internal/simnet"
	"transientbd/internal/stream"
	"transientbd/internal/trace"
	"transientbd/internal/traceio"
	"transientbd/internal/wire"
)

// equivAuthKey is the shared key every durable equivalence arm runs
// under, so authentication rides along with every durability schedule.
var equivAuthKey = []byte("equivalence-shared-key")

// durableArm configures one durability schedule for runTCPDurable.
type durableArm struct {
	// window is the agents' in-memory send window (small, so outages
	// spill).
	window int
	// outage starts the proxy in Down (dead head) and brings it Up only
	// once every agent has drained its entire source into the WAL — an
	// outage far longer than the send window.
	outage bool
	// killRestart additionally kills every agent (context cancel — the
	// orderly moral equivalent of kill -9, since the WAL state on disk
	// is identical) mid-outage and restarts them against the healed
	// head.
	killRestart bool
	// impostor flings a wrong-key agent at the head alongside the real
	// ones; it must be rejected, counted, and contribute nothing.
	impostor bool
}

// runTCPDurable runs one durability arm over real TCP: authenticated
// WAL-backed agents through a Down/Up proxy, optionally killed and
// restarted mid-outage. Returns the alert stream, final snapshot, and
// per-agent metrics (from the final wave, for spill/recovery
// assertions).
func runTCPDurable(t *testing.T, feeds map[string][]trace.Visit, arm durableArm) ([]stream.Alert, *stream.Snapshot, map[string]agent.Metrics) {
	t.Helper()
	names := make([]string, 0, len(feeds))
	for n := range feeds {
		names = append(names, n)
	}
	sort.Strings(names)

	srv, err := NewServer(ServerConfig{
		Core: Config{
			Stream: stream.Config{
				Online: core.OnlineOptions{
					Options:         core.Options{Interval: 50 * simnet.Millisecond},
					WindowIntervals: 24000,
					ServiceTimes:    testServiceTimes,
				},
			},
			FlushLag:         300 * simnet.Millisecond,
			ExpectNodes:      names,
			HeartbeatTimeout: 5 * time.Minute,
		},
		AuthKey: equivAuthKey,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	var alerts []stream.Alert
	alertsDone := make(chan struct{})
	go func() {
		defer close(alertsDone)
		for a := range srv.Alerts() {
			alerts = append(alerts, a)
		}
	}()

	proxy, err := chaos.NewProxy("127.0.0.1:0", addr)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer proxy.Close()
	target := proxy.Addr()
	if arm.outage || arm.killRestart {
		proxy.Down()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	walRoot := t.TempDir()
	var drained atomic.Int64
	allDrained := make(chan struct{})

	agentCfg := func(name string) agent.Config {
		return agent.Config{
			Node:           name,
			Addr:           target,
			BatchSize:      equivBatch,
			Window:         arm.window,
			HeartbeatEvery: 50 * time.Millisecond,
			IOTimeout:      500 * time.Millisecond,
			BackoffBase:    5 * time.Millisecond,
			BackoffMax:     50 * time.Millisecond,
			WALDir:         filepath.Join(walRoot, name),
			WALNoSync:      true,
			AuthKey:        equivAuthKey,
		}
	}

	metrics := make(map[string]agent.Metrics)
	var mu sync.Mutex
	runWave := func(ctx context.Context, withDrain bool) map[string]error {
		var wg sync.WaitGroup
		errs := make(map[string]error)
		for _, name := range names {
			feed := jsonlFeed(t, feeds[name])
			cfg := agentCfg(name)
			if withDrain {
				cfg.OnSourceDrained = func() {
					if drained.Add(1) == int64(len(names)) {
						close(allDrained)
					}
				}
			}
			wg.Add(1)
			go func(name string, cfg agent.Config, feed []byte) {
				defer wg.Done()
				m, err := agent.Run(ctx, bytes.NewReader(feed), cfg)
				mu.Lock()
				metrics[name] = m
				errs[name] = err
				mu.Unlock()
			}(name, cfg, feed)
		}
		wg.Wait()
		return errs
	}

	var impostorDone chan struct{}
	if arm.impostor {
		impostorDone = make(chan struct{})
		go func() {
			defer close(impostorDone)
			cfg := agentCfg("impostor")
			cfg.WALDir = ""
			cfg.AuthKey = []byte("wrong-key-entirely")
			_, feed := feeds[names[0]], jsonlFeed(t, feeds[names[0]])
			_, err := agent.Run(ctx, bytes.NewReader(feed), cfg)
			if err == nil || !strings.Contains(err.Error(), "authentication") {
				t.Errorf("impostor agent: err = %v, want terminal auth failure", err)
			}
		}()
	}

	switch {
	case arm.killRestart:
		kctx, kill := context.WithCancel(ctx)
		go func() {
			<-allDrained
			kill()
		}()
		for name, err := range runWave(kctx, true) {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("phase-1 agent %s: %v, want context.Canceled (killed mid-outage)", name, err)
			}
		}
		proxy.Up()
		for name, err := range runWave(ctx, false) {
			if err != nil {
				t.Fatalf("restarted agent %s: %v", name, err)
			}
		}
	case arm.outage:
		go func() {
			<-allDrained
			proxy.Up()
		}()
		for name, err := range runWave(ctx, true) {
			if err != nil {
				t.Fatalf("agent %s: %v", name, err)
			}
		}
	default:
		for name, err := range runWave(ctx, false) {
			if err != nil {
				t.Fatalf("agent %s: %v", name, err)
			}
		}
	}
	if impostorDone != nil {
		<-impostorDone
	}

	select {
	case <-srv.Done():
	case <-time.After(time.Minute):
		t.Fatalf("merge head did not finish after every agent's goodbye")
	}
	snap := srv.Final()
	<-alertsDone

	// Zero loss, exactly once: whatever the schedule did, every source
	// record is ingested and none dropped.
	var total int64
	for _, vs := range feeds {
		total += int64(len(vs))
	}
	if m := srv.Metrics(); m.Ingested != total {
		for _, ns := range srv.NodeStatuses() {
			t.Logf("node %q: delivered %d deduped %d dropped %d lastSeq %d eof %v",
				ns.Node, ns.Delivered, ns.Deduped, ns.Dropped, ns.LastSeq, ns.EOF)
		}
		t.Fatalf("head ingested %d records, want %d", m.Ingested, total)
	}
	for _, ns := range srv.NodeStatuses() {
		if ns.Dropped != 0 {
			t.Fatalf("node %q dropped %d records on a no-loss schedule", ns.Node, ns.Dropped)
		}
		if ns.Node == "impostor" {
			t.Fatalf("impostor acquired node state at the head")
		}
	}
	if arm.impostor && srv.AuthRejects() == 0 {
		t.Fatalf("impostor ran but the head counted no auth rejections")
	}
	return alerts, snap, metrics
}

// TestMergeServerAuth covers the head's half of the shared-key
// handshake at the unit level: the full authenticated round trip, the
// wrong-key rejection (counted, no node state), and the readable
// rejection of a pre-auth protocol peer.
func TestMergeServerAuth(t *testing.T) {
	key := []byte("unit-test-key")
	newAuthServer := func(t *testing.T, expect ...string) (*Server, string) {
		t.Helper()
		srv, err := NewServer(ServerConfig{
			Core: Config{
				Stream: stream.Config{
					Online: core.OnlineOptions{
						Options:         core.Options{Interval: 50 * simnet.Millisecond},
						WindowIntervals: 24000,
						ServiceTimes:    testServiceTimes,
					},
				},
				FlushLag:         300 * simnet.Millisecond,
				ExpectNodes:      expect,
				HeartbeatTimeout: time.Minute,
			},
			AuthKey: key,
			Logf:    t.Logf,
		})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
		return srv, addr
	}

	t.Run("authenticated round trip", func(t *testing.T) {
		srv, addr := newAuthServer(t, "n1")
		defer srv.Close()
		drain := make(chan struct{})
		go func() {
			defer close(drain)
			for range srv.Alerts() {
			}
		}()
		vs := chaos.Workload([]string{"web"}, 300, 3)
		var buf bytes.Buffer
		if err := writeFeed(&buf, byDepart(vs)); err != nil {
			t.Fatal(err)
		}
		_, err := agent.Run(context.Background(), &buf, agent.Config{
			Node: "n1", Addr: addr, BatchSize: 50, Window: 4,
			HeartbeatEvery: 50 * time.Millisecond, IOTimeout: time.Second,
			BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
			AuthKey: key,
		})
		if err != nil {
			t.Fatalf("agent.Run: %v", err)
		}
		<-srv.Done()
		if got := srv.Metrics().Ingested; got != int64(len(vs)) {
			t.Errorf("ingested %d, want %d", got, len(vs))
		}
		if srv.AuthRejects() != 0 {
			t.Errorf("AuthRejects = %d, want 0", srv.AuthRejects())
		}
		srv.Close()
		<-drain
	})

	t.Run("wrong key counted and stateless", func(t *testing.T) {
		srv, addr := newAuthServer(t, "n1")
		defer srv.Close()
		vs := chaos.Workload([]string{"web"}, 100, 5)
		var buf bytes.Buffer
		if err := writeFeed(&buf, byDepart(vs)); err != nil {
			t.Fatal(err)
		}
		_, err := agent.Run(context.Background(), &buf, agent.Config{
			Node: "n1", Addr: addr, BatchSize: 50, Window: 4,
			HeartbeatEvery: 50 * time.Millisecond, IOTimeout: time.Second,
			BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
			AuthKey: []byte("the-wrong-key"),
		})
		if err == nil || !strings.Contains(err.Error(), "authentication") {
			t.Fatalf("want auth failure, got %v", err)
		}
		// The head's session goroutine counts the reject asynchronously
		// with the agent's exit; give it a moment.
		deadline := time.Now().Add(5 * time.Second)
		for srv.AuthRejects() == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if srv.AuthRejects() == 0 {
			t.Error("AuthRejects = 0 after a wrong-key handshake")
		}
		for _, ns := range srv.NodeStatuses() {
			if ns.Sessions != 0 || ns.Delivered != 0 {
				t.Errorf("node %q has session state (%d sessions, %d delivered) from a rejected peer", ns.Node, ns.Sessions, ns.Delivered)
			}
		}
	})

	t.Run("pre-auth protocol peer told why", func(t *testing.T) {
		srv, addr := newAuthServer(t)
		defer srv.Close()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		w := wire.NewWriter(conn)
		if err := w.WriteHello(wire.Hello{Version: 1, Node: "old", FirstSeq: 1}); err == nil {
			err = w.Flush()
		}
		if err != nil {
			t.Fatal(err)
		}
		f, err := wire.NewReader(conn).Read()
		if err != nil || f.Type != wire.TypeError {
			t.Fatalf("want Error frame, got type %d err %v", f.Type, err)
		}
		if !strings.Contains(f.Error.Msg, "unauthenticated peer") {
			t.Errorf("rejection %q does not name the problem", f.Error.Msg)
		}
		if srv.AuthRejects() != 1 {
			t.Errorf("AuthRejects = %d, want 1", srv.AuthRejects())
		}
	})
}

func writeFeed(buf *bytes.Buffer, vs []trace.Visit) error {
	return traceio.WriteVisits(buf, vs)
}
