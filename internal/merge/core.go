// Package merge is the multi-node ingestion head: it accepts
// sequence-numbered record batches from per-host agents (internal/agent,
// over internal/wire) and runs the epoch-barrier discipline of the
// sharded runtime one level up — across *nodes* instead of goroutine
// shards — feeding the unchanged internal/stream runtime underneath.
//
// # The node barrier
//
// Each node contributes a watermark: the newest departure timestamp it
// has delivered (batches and heartbeats both raise it). The global
// release point W is the minimum watermark over contributing nodes, so
// no interval seals until every node has delivered past it — the same
// guarantee the single-process runtime gets from reading one
// depart-ordered feed. Within the head, records release and intervals
// seal in the exact order a single fine-grained feed would produce:
// a record is observed when W reaches its departure, and an interval
// ending at e seals when W reaches e+FlushLag — Core.advanceTo
// interleaves the two so a coarse W jump (three nodes advancing in
// steps) replays the identical event sequence as a fine one. That, plus
// the deterministic sort inside each release, is what makes "N agent
// processes ≡ 1 process" hold field-for-field (TestMergeEquivalence).
//
// # Exactly-once, loss, and degraded nodes
//
// Delivery is exactly-once by dedup on (node, seq): sequence numbers
// are positional in the node's source stream, so retransmission after
// a reconnect — or a full agent restart replaying its source — is
// acknowledged without being re-applied. A sequence *gap* is a protocol
// error that closes the connection; the agent retransmits from the
// last-acknowledged batch.
//
// A node that goes silent past the heartbeat timeout (partition, agent
// crash, stalled host) is *degraded*: its watermark stops holding back
// W, so the healthy nodes' intervals keep sealing. Records it already
// delivered stay buffered and are still applied when W passes them.
// When the node returns it is re-admitted immediately; records it then
// delivers from behind the release point are dropped with exact
// per-node accounting (NodeStatus.Dropped) — never silently, and never
// by wedging the global barrier. This mirrors the paper's priority:
// fine-grained *timeliness* of detection over completeness under
// partial failure.
//
// # Concurrency
//
// Core is NOT goroutine-safe: one owner (the Server event loop, or a
// test) calls all mutating methods. Alerts(), Metrics() and
// NodeStatuses() are safe from any goroutine.
package merge

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"transientbd/internal/simnet"
	"transientbd/internal/stream"
	"transientbd/internal/trace"
)

// noAutoAdvance is the FlushLag the underlying runtime is given so its
// own maxDepart-driven watermark never fires: sealing is the barrier's
// job here. Large enough that maxDepart-noAutoAdvance is always far in
// the past, small enough that the subtraction cannot overflow.
const noAutoAdvance = simnet.Duration(1) << 56

// Config tunes a merge head.
type Config struct {
	// Stream configures the underlying detection runtime (analyzers,
	// shards, queue depth, checkpoints). Stream.FlushLag and
	// Stream.Resume are rejected: sealing is driven by the node barrier
	// (see FlushLag below), and resuming a merge head from a checkpoint
	// would double-apply records the agents retransmit (acknowledgment
	// state is in-memory; see docs/operations.md).
	Stream stream.Config
	// FlushLag is how far interval sealing trails the release point W,
	// in trace time. It must exceed the longest request residence plus
	// any per-node feed reordering, exactly like the single-process
	// flag. Default 1 s.
	FlushLag simnet.Duration
	// ExpectNodes pre-registers node identities. The barrier waits for
	// every expected node to deliver before any interval seals (their
	// watermarks start at zero), so a slow-starting agent cannot miss
	// the beginning of the analysis. Unlisted nodes may still connect.
	ExpectNodes []string
	// HeartbeatTimeout is the wall-clock silence (no batch, heartbeat,
	// or handshake) after which a node is degraded so it stops holding
	// back the barrier. Default 10 s.
	HeartbeatTimeout time.Duration
	// Now is the wall clock, injectable for deterministic degrade
	// tests. Default time.Now.
	Now func() time.Time
}

// NodeStatus is one node's published state — read-only, rebuilt after
// every event, safe from any goroutine via Core.NodeStatuses.
type NodeStatus struct {
	// Node is the agent's stable identity.
	Node string
	// Watermark is the newest departure the node has delivered;
	// LastSeq the highest batch sequence applied.
	Watermark simnet.Time
	LastSeq   uint64
	// Sessions counts handshakes so far; Reconnects is Sessions-1
	// clamped at zero. Connected reports a currently open session.
	Sessions  int64
	Connected bool
	// Degraded means the node went silent past the heartbeat timeout
	// and no longer holds back the barrier; EOF means it finished its
	// stream cleanly.
	Degraded bool
	EOF      bool
	// Delivered counts records applied from this node; Deduped records
	// skipped as retransmissions; Dropped records that arrived behind
	// the release point after a degrade (exact loss accounting);
	// Invalid records rejected by validation; Buffered records
	// delivered but not yet released to the runtime.
	Delivered, Deduped, Dropped, Invalid, Buffered int64
	// LastFrameWall is the UnixNano wall time of the node's last frame.
	LastFrameWall int64
	// WALDepth and WALSegments mirror the agent's advertised write-ahead
	// log state (version-2 heartbeats); Spilling means the agent is
	// buffering batches on disk beyond its send window — a head outage
	// or backpressure being absorbed. All zero for agents without a WAL.
	WALDepth    int64
	WALSegments int64
	Spilling    bool
}

type node struct {
	name      string
	lastSeq   uint64
	sawBatch  bool   // a batch has been applied (first-batch rule no longer applies)
	ringStart uint64 // agent-declared lowest transmittable seq (Hello.FirstSeq)
	watermark simnet.Time
	buf       []trace.Visit // delivered, awaiting release (depart > obsMark)
	sessions  int64
	conns     int64
	degraded  bool
	eof       bool
	lastFrame time.Time

	walDepth    int64
	walSegments int64
	spilling    bool

	delivered, deduped, dropped, invalid int64
}

// Core is the transport-independent merge head. See the package
// comment for the barrier discipline and the concurrency contract.
type Core struct {
	cfg Config
	rt  *stream.Runtime
	iv  simnet.Duration
	lag simnet.Duration

	nodes map[string]*node
	names []string // sorted node names, for deterministic iteration
	// wm is the release point W (monotone); obsMark the threshold up
	// to which buffered records have been observed; sealed the newest
	// grid point handed to the runtime's Advance.
	wm      simnet.Time
	obsMark simnet.Time
	sealed  simnet.Time
	started bool // a watermark event has occurred (wm is meaningful)

	finished bool
	final    *stream.Snapshot
	release  []trace.Visit // reused release scratch

	degrades atomic.Int64
	statusA  atomic.Pointer[[]NodeStatus]
}

// New builds a merge head and starts its runtime. Close or Finish must
// be called to release the runtime's goroutines.
func New(cfg Config) (*Core, error) {
	if cfg.Stream.Resume {
		return nil, errors.New("merge: Stream.Resume is not supported — agent acknowledgment state is in-memory, so a resumed head would double-apply retransmitted records; start cold and let agents retransmit")
	}
	if cfg.Stream.FlushLag != 0 {
		return nil, errors.New("merge: set merge.Config.FlushLag, not Stream.FlushLag — sealing is driven by the node barrier")
	}
	if cfg.FlushLag <= 0 {
		cfg.FlushLag = simnet.Second
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 10 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Stream.Online.Options.Interval <= 0 {
		cfg.Stream.Online.Options.Interval = 50 * simnet.Millisecond
	}
	cfg.Stream.FlushLag = noAutoAdvance
	rt, err := stream.New(cfg.Stream)
	if err != nil {
		return nil, err
	}
	c := &Core{
		cfg:   cfg,
		rt:    rt,
		iv:    cfg.Stream.Online.Options.Interval,
		lag:   cfg.FlushLag,
		nodes: make(map[string]*node),
	}
	now := cfg.Now()
	for _, name := range cfg.ExpectNodes {
		c.addNode(name, now)
	}
	c.publishStatus()
	return c, nil
}

func (c *Core) addNode(name string, now time.Time) *node {
	n := &node{name: name, lastFrame: now}
	c.nodes[name] = n
	c.names = append(c.names, name)
	sort.Strings(c.names)
	return n
}

// Admit registers a node session (handshake), returning the node's
// last-acknowledged sequence — the agent's resume cursor. firstSeq is
// the agent's declared ring start (Hello.FirstSeq): the lowest batch it
// can still transmit, which anchors the first-batch rule in Batch. A
// degraded node is re-admitted: it immediately holds back the barrier
// again until it catches up.
func (c *Core) Admit(name string, firstSeq uint64) uint64 {
	n, ok := c.nodes[name]
	if !ok {
		n = c.addNode(name, c.cfg.Now())
	}
	n.sessions++
	n.conns++
	n.degraded = false
	n.ringStart = firstSeq
	n.lastFrame = c.cfg.Now()
	c.publishStatus()
	return n.lastSeq
}

// Depart records a session closing (any reason). The node keeps its
// state; liveness is judged by frame recency, not connection presence,
// so a quick reconnect never degrades it.
func (c *Core) Depart(name string) {
	if n, ok := c.nodes[name]; ok && n.conns > 0 {
		n.conns--
		c.publishStatus()
	}
}

// errSeqGap is returned for a batch that skips sequence numbers; the
// transport must close the connection so the agent retransmits from
// its last acknowledged batch.
type errSeqGap struct {
	node string
	want uint64
	got  uint64
}

func (e errSeqGap) Error() string {
	return fmt.Sprintf("merge: node %q sequence gap: want %d, got %d (close and retransmit)", e.node, e.want, e.got)
}

// Batch applies one sequence-numbered batch from a node, returning the
// cumulative acknowledgment sequence. Duplicate sequences are
// acknowledged without re-application (exactly-once); a gap is an
// error. Records behind the release point are dropped with accounting;
// the rest buffer until the barrier passes their departure.
func (c *Core) Batch(name string, seq uint64, visits []trace.Visit) (uint64, error) {
	if c.finished {
		return 0, errors.New("merge: head is finished")
	}
	n, ok := c.nodes[name]
	if !ok {
		return 0, fmt.Errorf("merge: batch from unadmitted node %q", name)
	}
	n.lastFrame = c.cfg.Now()
	// Any frame re-admits a degraded node: a healed partition resumes on
	// the same connection, with no fresh handshake to clear the flag.
	n.degraded = false
	switch {
	case n.sawBatch && seq <= n.lastSeq:
		n.deduped += int64(len(visits))
		c.publishStatus()
		return n.lastSeq, nil
	case n.sawBatch && seq != n.lastSeq+1:
		return n.lastSeq, errSeqGap{node: name, want: n.lastSeq + 1, got: seq}
	case n.eof:
		return n.lastSeq, fmt.Errorf("merge: node %q sent batch %d after goodbye", name, seq)
	case !n.sawBatch && seq != n.lastSeq+1 && seq != n.ringStart:
		// A node's first applied batch may start past 1 only where the
		// agent's handshake said its ring begins — the head-restarted-cold
		// case, where earlier acknowledgments died with the old head.
		// Anything else means an earlier batch was lost in transit
		// (dropped frame, reordering proxy): accepting it here would
		// advance the cursor past data the agent still holds, turning the
		// loss permanent. Reject so the agent retransmits from its ring.
		return n.lastSeq, errSeqGap{node: name, want: n.lastSeq + 1, got: seq}
	}
	n.lastSeq = seq
	n.sawBatch = true
	for i := range visits {
		v := visits[i]
		if stream.ValidateVisit(v) != nil {
			n.invalid++
			continue
		}
		n.delivered++
		if c.started && v.Depart <= c.obsMark {
			// Behind the release point: the barrier moved on while this
			// node was degraded (or its feed reordered beyond FlushLag).
			// Dropped with accounting, never applied half-sealed.
			n.dropped++
			continue
		}
		n.buf = append(n.buf, v)
		// The watermark trails the newest delivered departure by one
		// tick: a depart-sorted feed guarantees every *earlier*
		// departure has been delivered, but records tied with the
		// newest may still be split across the next batch boundary —
		// releasing through the tie would misclassify them as late.
		if v.Depart-1 > n.watermark {
			n.watermark = v.Depart - 1
		}
	}
	c.tryAdvance()
	c.publishStatus()
	return n.lastSeq, nil
}

// Heartbeat applies a liveness/watermark frame from a node, returning
// the cumulative acknowledgment sequence for the transport's echo.
func (c *Core) Heartbeat(name string, maxDepart simnet.Time) (uint64, error) {
	n, ok := c.nodes[name]
	if !ok {
		return 0, fmt.Errorf("merge: heartbeat from unadmitted node %q", name)
	}
	n.lastFrame = c.cfg.Now()
	n.degraded = false
	// Same one-tick trail as Batch: the agent may still hold unsent
	// records tied with its advertised newest departure.
	if maxDepart-1 > n.watermark && !n.eof {
		n.watermark = maxDepart - 1
		c.tryAdvance()
	}
	c.publishStatus()
	return n.lastSeq, nil
}

// WALStats records a node's advertised durability state (carried on
// version-2 heartbeats) for export. Unknown nodes are ignored — the
// transport validates admission via Heartbeat first.
func (c *Core) WALStats(name string, depth, segments uint64, spilling bool) {
	n, ok := c.nodes[name]
	if !ok {
		return
	}
	n.walDepth = int64(depth)
	n.walSegments = int64(segments)
	n.spilling = spilling
	c.publishStatus()
}

// EOF marks a node's stream complete after finalSeq batches. The node
// stops contributing to the barrier; once every node is at EOF, Done
// reports true and the owner should Finish.
func (c *Core) EOF(name string, finalSeq uint64) error {
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("merge: goodbye from unadmitted node %q", name)
	}
	n.lastFrame = c.cfg.Now()
	if n.eof {
		return nil
	}
	if finalSeq != n.lastSeq {
		return fmt.Errorf("merge: node %q goodbye at seq %d but %d applied (incomplete stream)", name, finalSeq, n.lastSeq)
	}
	n.eof = true
	c.tryAdvance()
	c.publishStatus()
	return nil
}

// Tick runs the heartbeat-timeout sweep: any non-EOF node silent past
// HeartbeatTimeout is degraded so it stops holding back the barrier.
// Returns the names of nodes degraded by this tick.
func (c *Core) Tick() []string {
	now := c.cfg.Now()
	var degraded []string
	for _, name := range c.names {
		n := c.nodes[name]
		if n.eof || n.degraded {
			continue
		}
		if now.Sub(n.lastFrame) > c.cfg.HeartbeatTimeout {
			n.degraded = true
			c.degrades.Add(1)
			degraded = append(degraded, name)
		}
	}
	if len(degraded) > 0 {
		c.tryAdvance()
		c.publishStatus()
	}
	return degraded
}

// Done reports whether every known node has reached EOF (and at least
// one node exists): the merge head's natural end of stream.
func (c *Core) Done() bool {
	if len(c.nodes) == 0 {
		return false
	}
	for _, n := range c.nodes {
		if !n.eof {
			return false
		}
	}
	return true
}

// Released returns the release point W: every record with a departure
// at or before it has been observed (or dropped, with accounting).
func (c *Core) Released() simnet.Time { return c.obsMark }

// tryAdvance recomputes the release point W = min watermark over
// contributing nodes (not degraded, not EOF) and replays the
// single-feed event order up to it: records observe at W = depart,
// intervals ending at e seal at W = e+FlushLag, observations before
// seals on ties. EOF'd nodes stop contributing; if every node is EOF'd
// the remaining records release at Finish.
func (c *Core) tryAdvance() {
	w := simnet.Time(0)
	any := false
	for _, n := range c.nodes {
		if n.degraded || n.eof {
			continue
		}
		if !any || n.watermark < w {
			w = n.watermark
		}
		any = true
	}
	if !any || (c.started && w <= c.wm) {
		return
	}
	c.started = true
	c.wm = w
	c.advanceTo(w)
}

// advanceTo replays the fine-grained event order up to W. Every seal
// point e (grid-aligned) has threshold e+lag; advanceTo alternates
// "observe everything departing ≤ threshold" with "seal up to e" so
// the interleaving is identical no matter how coarsely W jumps — the
// keystone of cross-node determinism.
func (c *Core) advanceTo(w simnet.Time) {
	for {
		e := c.sealed + simnet.Time(c.iv)
		if e+simnet.Time(c.lag) > w {
			break
		}
		c.releaseUpTo(e + simnet.Time(c.lag))
		c.rt.Advance(e)
		c.sealed = e
	}
	c.releaseUpTo(w)
}

// releaseUpTo observes every buffered record with depart ≤ t, in a
// deterministic total order (so equal-departure ties resolve the same
// way at any node count).
func (c *Core) releaseUpTo(t simnet.Time) {
	if t <= c.obsMark {
		return
	}
	c.obsMark = t
	out := c.release[:0]
	for _, name := range c.names {
		n := c.nodes[name]
		kept := n.buf[:0]
		for _, v := range n.buf {
			if v.Depart <= t {
				out = append(out, v)
			} else {
				kept = append(kept, v)
			}
		}
		n.buf = kept
	}
	if len(out) == 0 {
		c.release = out
		return
	}
	sortVisits(out)
	for i := range out {
		c.rt.Observe(out[i]) //nolint:errcheck // pre-validated in Batch
	}
	c.release = out[:0]
}

// sortVisits orders a release chunk by (Depart, Server, Arrive, Class,
// TxnID, HopID): chunks release in non-decreasing departure, so the
// concatenated Observe order is the canonical departure-sorted order
// of the whole stream, independent of node count and batch timing.
func sortVisits(vs []trace.Visit) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := &vs[i], &vs[j]
		if a.Depart != b.Depart {
			return a.Depart < b.Depart
		}
		if a.Server != b.Server {
			return a.Server < b.Server
		}
		if a.Arrive != b.Arrive {
			return a.Arrive < b.Arrive
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.TxnID != b.TxnID {
			return a.TxnID < b.TxnID
		}
		return a.HopID < b.HopID
	})
}

// Finish releases every still-buffered record (stragglers from
// degraded nodes included), seals all intervals, and shuts the runtime
// down, returning the final snapshot. Idempotent.
func (c *Core) Finish() *stream.Snapshot {
	if c.finished {
		return c.final
	}
	c.finished = true
	var max simnet.Time
	for _, n := range c.nodes {
		for _, v := range n.buf {
			if v.Depart > max {
				max = v.Depart
			}
		}
	}
	if max > c.obsMark {
		// Replay the event order out to the last straggler, as if every
		// node's watermark had reached it, then let Close seal the rest.
		c.advanceTo(max)
	}
	c.final = c.rt.Close()
	c.publishStatus()
	return c.final
}

// Abort tears the runtime down without sealing (error paths).
func (c *Core) Abort() {
	if c.finished {
		return
	}
	c.finished = true
	c.rt.Abort()
}

// Checkpoint writes an explicit durable cut of the runtime state (when
// the stream config has a checkpoint directory). Periodic cuts also
// happen automatically at barrier advances, on the stream runtime's
// own cadence.
func (c *Core) Checkpoint() error { return c.rt.Checkpoint() }

// Snapshot returns the ranked batch-style reclassification of the
// runtime's current window. Owner goroutine only.
func (c *Core) Snapshot() *stream.Snapshot { return c.rt.Snapshot() }

// Alerts returns the runtime's merged alert stream. The owner must
// drain it; it closes after Finish.
func (c *Core) Alerts() <-chan stream.Alert { return c.rt.Alerts() }

// Metrics returns the runtime's self-metrics. Safe from any goroutine.
func (c *Core) Metrics() stream.Metrics { return c.rt.Metrics() }

// ShardHealth samples the runtime's per-shard liveness. Safe from any
// goroutine.
func (c *Core) ShardHealth() []stream.ShardHealth { return c.rt.ShardHealth() }

// Degrades reports how many degrade transitions have happened. Safe
// from any goroutine.
func (c *Core) Degrades() int64 { return c.degrades.Load() }

// NodeStatuses returns the published per-node state, sorted by node
// name. Safe from any goroutine, any time.
func (c *Core) NodeStatuses() []NodeStatus {
	if p := c.statusA.Load(); p != nil {
		return *p
	}
	return nil
}

// publishStatus rebuilds the any-goroutine node status table. Called
// by the owner after every mutating event.
func (c *Core) publishStatus() {
	out := make([]NodeStatus, 0, len(c.names))
	for _, name := range c.names {
		n := c.nodes[name]
		out = append(out, NodeStatus{
			Node:          n.name,
			Watermark:     n.watermark,
			LastSeq:       n.lastSeq,
			Sessions:      n.sessions,
			Connected:     n.conns > 0,
			Degraded:      n.degraded,
			EOF:           n.eof,
			Delivered:     n.delivered,
			Deduped:       n.deduped,
			Dropped:       n.dropped,
			Invalid:       n.invalid,
			Buffered:      int64(len(n.buf)),
			LastFrameWall: n.lastFrame.UnixNano(),
			WALDepth:      n.walDepth,
			WALSegments:   n.walSegments,
			Spilling:      n.spilling,
		})
	}
	c.statusA.Store(&out)
}
