package merge

import (
	"bytes"
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"transientbd/internal/agent"
	"transientbd/internal/chaos"
	"transientbd/internal/core"
	"transientbd/internal/simnet"
	"transientbd/internal/stream"
	"transientbd/internal/trace"
	"transientbd/internal/traceio"
)

// equivBatch is the batch size every arm of the equivalence matrix
// uses. Sequence numbers are positional, so arms only compare when
// they cut batches identically.
const equivBatch = 97

// jsonlFeed renders a feed to the JSONL form agents actually read, so
// the TCP arms exercise the full decode→frame→merge path.
func jsonlFeed(t *testing.T, vs []trace.Visit) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := traceio.WriteVisits(&buf, vs); err != nil {
		t.Fatalf("encode feed: %v", err)
	}
	return buf.Bytes()
}

// faultPlan configures one fault schedule on the proxy between agents
// and head.
type faultPlan struct {
	drop, dup, kill int64
	// killAllEvery additionally tears down every established
	// connection on a wall-clock cadence — torn sockets mid-stream, on
	// top of the frame faults.
	killAllEvery time.Duration
}

// runTCP runs one arm of the matrix over real TCP: a merge head, one
// agent per feed (optionally through a fault proxy), everything driven
// to clean completion. Returns the alert stream and final snapshot.
func runTCP(t *testing.T, feeds map[string][]trace.Visit, plan *faultPlan) ([]stream.Alert, *stream.Snapshot) {
	t.Helper()
	names := make([]string, 0, len(feeds))
	for n := range feeds {
		names = append(names, n)
	}
	sort.Strings(names)

	srv, err := NewServer(ServerConfig{
		Core: Config{
			Stream: stream.Config{
				Online: core.OnlineOptions{
					Options:         core.Options{Interval: 50 * simnet.Millisecond},
					WindowIntervals: 24000,
					ServiceTimes:    testServiceTimes,
				},
			},
			FlushLag:    300 * simnet.Millisecond,
			ExpectNodes: names,
			// Far beyond the test's runtime: the no-loss schedules must
			// never degrade a node, or loss would be legitimate.
			HeartbeatTimeout: 5 * time.Minute,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	var alerts []stream.Alert
	alertsDone := make(chan struct{})
	go func() {
		defer close(alertsDone)
		for a := range srv.Alerts() {
			alerts = append(alerts, a)
		}
	}()

	target := addr
	var proxy *chaos.Proxy
	if plan != nil {
		proxy, err = chaos.NewProxy("127.0.0.1:0", addr)
		if err != nil {
			t.Fatalf("NewProxy: %v", err)
		}
		proxy.DropEvery = plan.drop
		proxy.DupEvery = plan.dup
		proxy.KillEvery = plan.kill
		defer proxy.Close()
		target = proxy.Addr()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	stopKiller := make(chan struct{})
	if plan != nil && plan.killAllEvery > 0 {
		go func() {
			tick := time.NewTicker(plan.killAllEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					proxy.KillAll()
				case <-stopKiller:
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(names))
	for _, name := range names {
		feed := jsonlFeed(t, feeds[name])
		wg.Add(1)
		go func(name string, feed []byte) {
			defer wg.Done()
			_, err := agent.Run(ctx, bytes.NewReader(feed), agent.Config{
				Node:           name,
				Addr:           target,
				BatchSize:      equivBatch,
				Window:         8,
				HeartbeatEvery: 50 * time.Millisecond,
				IOTimeout:      500 * time.Millisecond,
				BackoffBase:    5 * time.Millisecond,
				BackoffMax:     50 * time.Millisecond,
			})
			errs <- err
		}(name, feed)
	}
	wg.Wait()
	close(stopKiller)
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("agent: %v", err)
		}
	}
	select {
	case <-srv.Done():
	case <-time.After(time.Minute):
		t.Fatalf("merge head did not finish after every agent's goodbye")
	}
	snap := srv.Final()
	<-alertsDone
	// Every arm runTCP drives is a no-loss schedule: each record must be
	// ingested exactly once, whatever the fault plan did to the frames.
	var total int64
	for _, vs := range feeds {
		total += int64(len(vs))
	}
	if m := srv.Metrics(); m.Ingested != total {
		for _, ns := range srv.NodeStatuses() {
			t.Logf("node %q: delivered %d deduped %d dropped %d invalid %d lastSeq %d eof %v",
				ns.Node, ns.Delivered, ns.Deduped, ns.Dropped, ns.Invalid, ns.LastSeq, ns.EOF)
		}
		t.Fatalf("head ingested %d records, want %d", m.Ingested, total)
	}
	if plan != nil && plan.drop > 0 && proxy.Dropped() == 0 {
		t.Fatalf("fault plan injected no drops — schedule did not exercise anything")
	}
	return alerts, snap
}

// runCoreDegrade runs the partition+degrade+readmit schedule at the
// Core level with an injected clock, so degrade timing — and therefore
// the exact set of dropped records — is deterministic. The named
// victim delivers a prefix, goes silent past the heartbeat timeout
// while the other nodes finish, is degraded by the sweep, then returns
// and replays its stream. Returns the alert stream, snapshot, the
// victim's drop counter and the drops computed from the release point.
func runCoreDegrade(t *testing.T, feeds map[string][]trace.Visit, victim string) ([]stream.Alert, *stream.Snapshot, int64, int64) {
	t.Helper()
	clock := newTestClock()
	names := make([]string, 0, len(feeds))
	for n := range feeds {
		names = append(names, n)
	}
	sort.Strings(names)
	cfg := testConfig(clock, names...)
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	alerts, wait := drainAlerts(c)
	for _, n := range names {
		c.Admit(n, 1)
	}

	vb := toBatches(feeds[victim], equivBatch)
	cut := (len(vb) + 3) / 4
	for i := 0; i < cut; i++ {
		if _, err := c.Batch(victim, uint64(i+1), vb[i]); err != nil {
			t.Fatalf("%s prefix batch %d: %v", victim, i+1, err)
		}
	}
	// The healthy nodes deliver everything, round-robin, with the wall
	// clock ticking so they stay live across the sweep.
	type cursor struct {
		node    string
		batches [][]trace.Visit
		next    int
	}
	var healthy []*cursor
	for _, n := range names {
		if n != victim {
			healthy = append(healthy, &cursor{node: n, batches: toBatches(feeds[n], equivBatch)})
		}
	}
	for {
		progressed := false
		for _, cu := range healthy {
			if cu.next >= len(cu.batches) {
				continue
			}
			clock.Advance(time.Millisecond)
			if _, err := c.Batch(cu.node, uint64(cu.next+1), cu.batches[cu.next]); err != nil {
				t.Fatalf("node %s batch %d: %v", cu.node, cu.next+1, err)
			}
			cu.next++
			progressed = true
		}
		if !progressed {
			break
		}
	}

	// Sweep: the victim has been silent past the timeout.
	clock.Advance(cfg.HeartbeatTimeout + time.Second)
	for _, cu := range healthy {
		if _, err := c.Heartbeat(cu.node, feeds[cu.node][len(feeds[cu.node])-1].Depart); err != nil {
			t.Fatalf("heartbeat %s: %v", cu.node, err)
		}
	}
	if deg := c.Tick(); len(deg) != 1 || deg[0] != victim {
		t.Fatalf("Tick degraded %v, want [%s]", deg, victim)
	}
	released := c.Released()

	// The victim returns and replays from its last acknowledged batch;
	// everything departing at or before the release point must drop,
	// with exact accounting.
	c.Admit(victim, 1)
	var expectDrops int64
	for i := cut; i < len(vb); i++ {
		for _, v := range vb[i] {
			if v.Depart <= released {
				expectDrops++
			}
		}
	}
	for i := cut; i < len(vb); i++ {
		if _, err := c.Batch(victim, uint64(i+1), vb[i]); err != nil {
			t.Fatalf("%s replay batch %d: %v", victim, i+1, err)
		}
	}

	for _, cu := range healthy {
		if err := c.EOF(cu.node, uint64(len(cu.batches))); err != nil {
			t.Fatalf("%s eof: %v", cu.node, err)
		}
	}
	if err := c.EOF(victim, uint64(len(vb))); err != nil {
		t.Fatalf("%s eof: %v", victim, err)
	}
	snap := c.Finish()
	wait()

	var dropped int64
	for _, st := range c.NodeStatuses() {
		if st.Node == victim {
			dropped = st.Dropped
		}
	}
	total := 0
	for _, f := range feeds {
		total += len(f)
	}
	if m := c.Metrics(); m.Ingested != int64(total)-dropped {
		t.Errorf("runtime ingested %d, want %d (total %d - dropped %d)", m.Ingested, int64(total)-dropped, total, dropped)
	}
	return *alerts, snap, dropped, expectDrops
}

// TestMergeEquivalence is the acceptance matrix for distributed
// ingestion: three workloads × {1 process, 3 agents} × fault schedules
// {none, disconnect+resume, partition+degrade+readmit}.
//
// The golden run for each workload is the single-agent, no-fault TCP
// pipeline. Every no-loss arm — any node count under none or
// disconnect+resume — must reproduce its alert stream and final
// snapshot field-for-field. The degrade arms run at the Core level
// with an injected wall clock (degrade timing, and therefore the exact
// drop set, must be deterministic to assert on): with one node the
// barrier simply waits, so the result is again field-identical; with
// three nodes the partitioned node's late records are dropped, and the
// drop counter must match the count computed from the release point
// exactly.
func TestMergeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP matrix is seconds-long; skipped under -short")
	}
	servers := []string{"web", "app", "db"}
	byNode := map[string]string{"web": "n1", "app": "n2", "db": "n3"}
	workloads := []struct {
		name string
		n    int
		seed int64
	}{
		{"uniform", 5000, 11},
		{"bursty", 6000, 23},
		{"tail", 4000, 47},
	}
	disconnect := &faultPlan{drop: 13, dup: 7, kill: 31, killAllEvery: 40 * time.Millisecond}

	for _, wl := range workloads {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			all := chaos.Workload(servers, wl.n, wl.seed)
			solo := map[string][]trace.Visit{"solo": byDepart(all)}
			parts := partitionByServer(all, byNode)

			goldenAlerts, goldenSnap := runTCP(t, solo, nil)
			if len(goldenAlerts) == 0 {
				t.Fatalf("golden run raised no alerts — workload too tame to prove anything")
			}

			sameAsGolden := func(name string, alerts []stream.Alert, snap *stream.Snapshot) {
				t.Helper()
				if len(alerts) != len(goldenAlerts) {
					t.Fatalf("%s: alert count %d, golden %d", name, len(alerts), len(goldenAlerts))
				}
				for i := range alerts {
					if alerts[i] != goldenAlerts[i] {
						t.Fatalf("%s: alert %d differs: %+v vs golden %+v", name, i, alerts[i], goldenAlerts[i])
					}
				}
				compareSnapshots(t, goldenSnap, snap)
			}

			a3, s3 := runTCP(t, parts, nil)
			sameAsGolden("3agents/none", a3, s3)

			a1d, s1d := runTCP(t, solo, disconnect)
			sameAsGolden("1process/disconnect+resume", a1d, s1d)

			a3d, s3d := runTCP(t, parts, disconnect)
			sameAsGolden("3agents/disconnect+resume", a3d, s3d)

			// 1 process × degrade: with a single node there is nothing
			// else to advance the barrier, so a degrade loses nothing and
			// the result must still be field-identical.
			a1g, s1g, dropped, expect := runCoreDegrade(t, solo, "solo")
			if dropped != 0 || expect != 0 {
				t.Fatalf("single-node degrade dropped %d (expected-from-release-point %d), want 0", dropped, expect)
			}
			sameAsGolden("1process/degrade", a1g, s1g)

			// 3 agents × degrade: the partitioned node's backlog behind
			// the release point is dropped — exactly as much as the
			// release point says, no more, no less.
			_, _, dropped3, expect3 := runCoreDegrade(t, parts, "n3")
			if expect3 == 0 {
				t.Fatalf("degenerate degrade schedule: no records behind the release point")
			}
			if dropped3 != expect3 {
				t.Fatalf("3agents/degrade: dropped %d, want exactly %d", dropped3, expect3)
			}

			// Durability arms (one workload is enough to prove the
			// machinery; the schedules are workload-independent). All run
			// authenticated, so the shared-key handshake rides along with
			// every durability property.
			if wl.name != "uniform" {
				return
			}

			// Head down for the entire feed — far beyond 10× the send
			// window. The WAL absorbs the whole source on disk; once the
			// head returns, delivery is byte-identical to fault-free.
			ao, so, mo := runTCPDurable(t, solo, durableArm{window: 2, outage: true})
			sameAsGolden("1process/wal-outage", ao, so)
			if p := mo["solo"].WALSpillPeak; p < 20 {
				t.Errorf("solo outage: WALSpillPeak = %d, want ≥ 20 (10× the window of 2)", p)
			}
			a3o, s3o, m3o := runTCPDurable(t, parts, durableArm{window: 2, outage: true})
			sameAsGolden("3agents/wal-outage", a3o, s3o)
			for name, m := range m3o {
				if m.WALSpillPeak <= 2 {
					t.Errorf("%s outage: WALSpillPeak = %d, want > window", name, m.WALSpillPeak)
				}
			}

			// kill -9 mid-outage + restart: agents die with the feed on
			// disk; their replacements replay the log and the merged
			// stream is still identical to the fault-free golden.
			ak, sk, mk := runTCPDurable(t, parts, durableArm{window: 2, killRestart: true})
			sameAsGolden("3agents/kill9-restart", ak, sk)
			for name, m := range mk {
				if m.WALRecovered == 0 {
					t.Errorf("%s restart: WALRecovered = 0 (restart did not replay the log)", name)
				}
			}

			// Impostor peer: a wrong-key agent alongside the real ones is
			// rejected, counted, and leaves no trace in the result.
			ai, si, _ := runTCPDurable(t, parts, durableArm{window: 8, impostor: true})
			sameAsGolden("3agents/impostor", ai, si)
		})
	}
}
