package merge

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"transientbd/internal/stream"
	"transientbd/internal/wire"
)

// ServerConfig tunes the TCP front of a merge head.
type ServerConfig struct {
	// Core configures the transport-independent merge head underneath.
	Core Config
	// TickEvery is the cadence of the heartbeat-timeout sweep (degrade
	// detection). Default 1 s, or HeartbeatTimeout/4 if that is
	// smaller.
	TickEvery time.Duration
	// AuthKey, when set, requires every agent to pass the mutual HMAC
	// challenge/response before admission. Agents with no key or the
	// wrong key are rejected with a readable Error frame and counted in
	// AuthRejects; they never contribute a record.
	AuthKey []byte
	// TLS, when set, wraps the listener so every session runs over TLS
	// (the CLI builds this from -tls-cert/-tls-key/-tls-ca).
	TLS *tls.Config
	// Logf, when set, receives session lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// Server accepts agent connections and drives a Core. The Core is
// single-owner; the server funnels every mutating call through one
// event goroutine, so sessions never race on barrier state.
//
// Lifecycle: New → Start → (sessions run) → Done closes when every
// node says Goodbye, after which Final holds the sealed snapshot.
// Drain forces that end early (SIGTERM); Close tears everything down.
// The caller must drain Alerts() for the server's whole life.
type Server struct {
	cfg  ServerConfig
	core *Core
	lis  net.Listener

	events chan func()
	quit   chan struct{} // closed by Close: stops the loops
	done   chan struct{} // closed once the core is finished
	final  *stream.Snapshot

	// evMu gates event submission: do() holds the read lock across its
	// enqueue, Close sets evClosed under the write lock *before*
	// closing quit — so every closure that made it into the queue is
	// guaranteed to run during the event loop's final drain, and no
	// do() caller can hang on a closure the loop will never see.
	evMu     sync.RWMutex
	evClosed bool

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	sessions sync.WaitGroup
	loops    sync.WaitGroup

	activeConns atomic.Int64
	authRejects atomic.Int64
}

// NewServer builds a merge head server (and its runtime). Start must
// follow; Close must eventually be called.
func NewServer(cfg ServerConfig) (*Server, error) {
	core, err := New(cfg.Core)
	if err != nil {
		return nil, err
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = time.Second
		if q := core.cfg.HeartbeatTimeout / 4; q < cfg.TickEvery {
			cfg.TickEvery = q
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Server{
		cfg:    cfg,
		core:   core,
		events: make(chan func(), 64),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}, nil
}

// Start listens on addr (e.g. "127.0.0.1:0") and begins accepting
// agents. Returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		s.core.Abort()
		return "", err
	}
	if s.cfg.TLS != nil {
		lis = tls.NewListener(lis, s.cfg.TLS)
	}
	s.lis = lis
	s.loops.Add(2)
	go s.eventLoop()
	go s.tickLoop()
	go s.acceptLoop()
	return lis.Addr().String(), nil
}

// do runs f on the event goroutine and waits for it. Returns false if
// the server is shutting down (f did not run).
func (s *Server) do(f func()) bool {
	s.evMu.RLock()
	if s.evClosed {
		s.evMu.RUnlock()
		return false
	}
	ran := make(chan struct{})
	s.events <- func() { f(); close(ran) }
	s.evMu.RUnlock()
	<-ran
	return true
}

func (s *Server) eventLoop() {
	defer s.loops.Done()
	for {
		select {
		case f := <-s.events:
			f()
		case <-s.quit:
			// Drain anything already queued so no do() caller hangs.
			for {
				select {
				case f := <-s.events:
					f()
				default:
					return
				}
			}
		}
	}
}

func (s *Server) tickLoop() {
	defer s.loops.Done()
	t := time.NewTicker(s.cfg.TickEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.do(func() {
				if s.core.finished {
					return
				}
				for _, name := range s.core.Tick() {
					s.cfg.Logf("merge: node %q degraded (silent past %v); barrier no longer waits for it", name, s.core.cfg.HeartbeatTimeout)
				}
			})
		case <-s.quit:
			return
		case <-s.done:
			return
		}
	}
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed (Drain/Close)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.sessions.Add(1)
		s.mu.Unlock()
		go s.session(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// session speaks one agent connection: handshake, then batches,
// heartbeats and the Goodbye, each applied to the Core on the event
// goroutine and answered on this one (single writer per connection).
func (s *Server) session(conn net.Conn) {
	defer s.sessions.Done()
	defer s.dropConn(conn)

	// A session that never completes a handshake should not linger; a
	// live session must send *something* (heartbeats at minimum) well
	// within twice the degrade timeout.
	idle := 2 * s.core.cfg.HeartbeatTimeout
	r := wire.NewReader(conn)
	w := wire.NewWriter(conn)

	conn.SetReadDeadline(time.Now().Add(idle))
	f, err := r.Read()
	if err != nil {
		s.cfg.Logf("merge: %s: handshake read: %v", conn.RemoteAddr(), err)
		return
	}
	if f.Type != wire.TypeHello {
		s.reject(conn, w, fmt.Sprintf("expected Hello, got frame type %d", f.Type))
		return
	}
	if f.Hello.Version != wire.Version {
		if len(s.cfg.AuthKey) > 0 && f.Hello.Version < 2 {
			// The old protocol has no authentication at all; tell the peer
			// why it can never be admitted rather than just "wrong version".
			s.authRejects.Add(1)
			s.reject(conn, w, fmt.Sprintf("unauthenticated peer: protocol version %d predates authenticated sessions (head speaks %d and requires a shared key)", f.Hello.Version, wire.Version))
			return
		}
		s.reject(conn, w, fmt.Sprintf("protocol version %d not supported (head speaks %d)", f.Hello.Version, wire.Version))
		return
	}
	if f.Hello.Node == "" {
		s.reject(conn, w, "empty node identity")
		return
	}
	node := f.Hello.Node
	if len(s.cfg.AuthKey) > 0 {
		if !s.challenge(conn, r, w, f.Hello) {
			return
		}
	}

	var lastAcked uint64
	var refused bool
	if !s.do(func() {
		if s.core.finished {
			refused = true
			return
		}
		lastAcked = s.core.Admit(node, f.Hello.FirstSeq)
	}) || refused {
		s.reject(conn, w, "merge head is draining")
		return
	}
	s.activeConns.Add(1)
	defer func() {
		s.activeConns.Add(-1)
		s.do(func() { s.core.Depart(node) })
	}()
	if err := w.WriteWelcome(wire.Welcome{Version: wire.Version, LastAcked: lastAcked}); err == nil {
		err = w.Flush()
	}
	if err != nil {
		s.cfg.Logf("merge: node %q: welcome write: %v", node, err)
		return
	}
	s.cfg.Logf("merge: node %q connected from %s (resume cursor %d)", node, conn.RemoteAddr(), lastAcked)

	for {
		conn.SetReadDeadline(time.Now().Add(idle))
		f, err := r.Read()
		if err != nil {
			s.cfg.Logf("merge: node %q: read: %v (session over; agent will retransmit)", node, err)
			return
		}
		switch f.Type {
		case wire.TypeBatch:
			var ack uint64
			var aerr error
			if !s.do(func() { ack, aerr = s.core.Batch(node, f.Batch.Seq, f.Batch.Visits) }) {
				return
			}
			if aerr != nil {
				s.reject(conn, w, aerr.Error())
				return
			}
			if err := writeAck(conn, w, ack); err != nil {
				return
			}
		case wire.TypeHeartbeat:
			var ack uint64
			var aerr error
			hb := f.Heartbeat
			if !s.do(func() {
				ack, aerr = s.core.Heartbeat(node, hb.MaxDepart)
				if aerr == nil {
					s.core.WALStats(node, hb.WALDepth, hb.WALSegments, hb.Spilling)
				}
			}) {
				return
			}
			if aerr != nil {
				s.reject(conn, w, aerr.Error())
				return
			}
			if err := writeAck(conn, w, ack); err != nil {
				return
			}
		case wire.TypeGoodbye:
			var aerr error
			if !s.do(func() {
				aerr = s.core.EOF(node, f.Goodbye.FinalSeq)
				if aerr == nil && s.core.Done() {
					s.finish()
				}
			}) {
				return
			}
			if aerr != nil {
				s.reject(conn, w, aerr.Error())
				return
			}
			// Echo the Goodbye: the agent's confirmation that the full
			// stream is applied. The agent closes; our read sees EOF.
			conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if err := w.WriteGoodbye(wire.Goodbye{FinalSeq: f.Goodbye.FinalSeq, Reason: "ack"}); err == nil {
				w.Flush()
			}
			s.cfg.Logf("merge: node %q finished its stream at seq %d", node, f.Goodbye.FinalSeq)
		case wire.TypeError:
			s.cfg.Logf("merge: node %q reported: %s", node, f.Error.Msg)
			return
		default:
			s.reject(conn, w, fmt.Sprintf("unexpected frame type %d", f.Type))
			return
		}
	}
}

// challenge runs the head's half of the mutual HMAC exchange: send
// Challenge (with our own proof over both nonces), demand a valid
// AgentProof back. Every way an agent can fail — wrong key, no Auth
// frame, a vanished connection — counts as an auth rejection; only a
// verified proof admits the node.
func (s *Server) challenge(conn net.Conn, r *wire.Reader, w *wire.Writer, h wire.Hello) bool {
	nonce, err := wire.NewNonce()
	if err != nil {
		s.cfg.Logf("merge: %s: challenge nonce: %v", conn.RemoteAddr(), err)
		return false
	}
	conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if err := w.WriteChallenge(wire.Challenge{Nonce: nonce, Proof: wire.HeadProof(s.cfg.AuthKey, h.Nonce, nonce)}); err == nil {
		err = w.Flush()
	}
	if err != nil {
		s.cfg.Logf("merge: %s: challenge write: %v", conn.RemoteAddr(), err)
		return false
	}
	f, err := r.Read()
	if err != nil {
		s.authRejects.Add(1)
		s.cfg.Logf("merge: %s: rejected: no authentication response from node %q: %v", conn.RemoteAddr(), h.Node, err)
		return false
	}
	if f.Type != wire.TypeAuth {
		s.authRejects.Add(1)
		s.reject(conn, w, fmt.Sprintf("expected Auth, got frame type %d", f.Type))
		return false
	}
	if !wire.ProofEqual(f.Auth.MAC, wire.AgentProof(s.cfg.AuthKey, h.Node, h.Nonce, nonce)) {
		s.authRejects.Add(1)
		s.reject(conn, w, fmt.Sprintf("authentication failed for node %q (shared key mismatch)", h.Node))
		return false
	}
	return true
}

func writeAck(conn net.Conn, w *wire.Writer, seq uint64) error {
	conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if err := w.WriteAck(wire.Ack{Seq: seq}); err != nil {
		return err
	}
	return w.Flush()
}

// reject sends an Error frame (best effort) and closes the connection.
func (s *Server) reject(conn net.Conn, w *wire.Writer, msg string) {
	s.cfg.Logf("merge: %s: rejected: %s", conn.RemoteAddr(), msg)
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := w.WriteError(wire.ErrorFrame{Msg: msg}); err == nil {
		w.Flush()
	}
}

// finish seals the core exactly once. Event goroutine only.
func (s *Server) finish() {
	select {
	case <-s.done:
		return
	default:
	}
	s.final = s.core.Finish()
	close(s.done)
}

// Done closes once every known node reached EOF (or Drain forced the
// end). Final is valid after it closes.
func (s *Server) Done() <-chan struct{} { return s.done }

// Final returns the sealed snapshot; valid once Done is closed.
func (s *Server) Final() *stream.Snapshot {
	select {
	case <-s.done:
		return s.final
	default:
		return nil
	}
}

// Drain forces the head to seal now — the SIGTERM path: stop accepting
// agents, release and seal everything buffered (stragglers from
// degraded or mid-reconnect nodes included), write the final
// checkpoint (when configured) and return the final snapshot.
// Idempotent; safe from any goroutine.
func (s *Server) Drain() *stream.Snapshot {
	if s.lis != nil {
		s.lis.Close()
	}
	s.do(func() { s.finish() })
	<-s.done
	return s.final
}

// Close drains (if not already finished) and tears the server down:
// listener, open sessions, event and tick loops. Safe to call more
// than once.
func (s *Server) Close() {
	s.Drain()
	s.mu.Lock()
	already := s.closed
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.sessions.Wait()
	if !already {
		// Stop accepting events only after every session is gone, then
		// let the loops drain what is queued and exit.
		s.evMu.Lock()
		s.evClosed = true
		s.evMu.Unlock()
		close(s.quit)
	}
	s.loops.Wait()
}

// Alerts returns the runtime's merged alert stream; the caller must
// drain it. It closes after the head finishes.
func (s *Server) Alerts() <-chan stream.Alert { return s.core.Alerts() }

// Metrics returns the underlying runtime's self-metrics. Safe from any
// goroutine.
func (s *Server) Metrics() stream.Metrics { return s.core.Metrics() }

// ShardHealth samples the runtime's per-shard liveness. Safe from any
// goroutine.
func (s *Server) ShardHealth() []stream.ShardHealth { return s.core.ShardHealth() }

// NodeStatuses returns the published per-node state. Safe from any
// goroutine.
func (s *Server) NodeStatuses() []NodeStatus { return s.core.NodeStatuses() }

// Degrades reports cumulative degrade transitions. Safe from any
// goroutine.
func (s *Server) Degrades() int64 { return s.core.Degrades() }

// ActiveConns reports currently admitted agent sessions. Safe from any
// goroutine.
func (s *Server) ActiveConns() int64 { return s.activeConns.Load() }

// AuthRejects reports cumulative sessions refused by the shared-key
// handshake (wrong key, no key, pre-auth protocol). Safe from any
// goroutine.
func (s *Server) AuthRejects() int64 { return s.authRejects.Load() }

// Snapshot returns the current ranked window state, computed on the
// event goroutine. Returns an error if the server is shutting down.
func (s *Server) Snapshot() (*stream.Snapshot, error) {
	var snap *stream.Snapshot
	if !s.do(func() {
		if !s.core.finished {
			snap = s.core.Snapshot()
		} else {
			snap = s.final
		}
	}) {
		return nil, errors.New("merge: server is shutting down")
	}
	return snap, nil
}
