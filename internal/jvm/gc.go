// Package jvm models a Java virtual machine heap and its garbage
// collector, the system-software-layer cause of transient bottlenecks in
// the paper's first case study (§IV-A/B).
//
// Two collectors are modeled after the paper's JDK versions:
//
//   - CollectorSerial ("JDK 1.5"): a synchronous, stop-the-world collector.
//     The whole server freezes for the collection: requests keep arriving
//     (load rises) but nothing completes (throughput drops to zero) — the
//     POI signature of Fig 9(b).
//   - CollectorConcurrent ("JDK 1.6"): a mostly-concurrent collector with
//     two brief stop-the-world phases (initial mark, remark) and background
//     collection work that competes with application threads for CPU.
//
// The heap fills as the server allocates per-request memory; crossing the
// occupancy threshold triggers a collection. Every GC's start and end
// timestamps are logged, mirroring the JVM's GC logging function the paper
// uses to compute the "GC running ratio" of Fig 10(a).
package jvm

import (
	"errors"
	"fmt"

	"transientbd/internal/cpu"
	"transientbd/internal/metrics"
	"transientbd/internal/simnet"
)

// CollectorKind selects the garbage collection algorithm.
type CollectorKind int

// Collector kinds. Serial reproduces JDK 1.5's default stop-the-world
// collector; Concurrent reproduces JDK 1.6's parallel/concurrent default.
const (
	CollectorSerial CollectorKind = iota + 1
	CollectorConcurrent
)

// String names the collector kind after the JDK version it models.
func (k CollectorKind) String() string {
	switch k {
	case CollectorSerial:
		return "serial (JDK 1.5)"
	case CollectorConcurrent:
		return "concurrent (JDK 1.6)"
	default:
		return fmt.Sprintf("CollectorKind(%d)", int(k))
	}
}

// MB is a convenience constant for configuring heap sizes in bytes.
const MB int64 = 1 << 20

// Config configures a Heap.
type Config struct {
	// Kind selects the collector. Required.
	Kind CollectorKind
	// HeapBytes is the total heap size. Defaults to 512 MB.
	HeapBytes int64
	// TriggerFraction is the occupancy fraction that triggers a collection.
	// Defaults to 0.9.
	TriggerFraction float64
	// LiveFraction is the occupancy fraction remaining after a collection
	// (the live set). Defaults to 0.25.
	LiveFraction float64
	// SerialPausePerGB is the stop-the-world pause duration per GB
	// collected for the serial collector. Defaults to 600 ms/GB (a few
	// hundred ms per collection for typical heaps — long enough to span
	// several 50 ms analysis intervals, as in Fig 9/10).
	SerialPausePerGB simnet.Duration
	// ConcurrentPause is the duration of each of the two brief
	// stop-the-world phases of the concurrent collector. Defaults to 4 ms.
	ConcurrentPause simnet.Duration
	// ConcurrentWorkPerGB is background CPU work per GB collected,
	// submitted to the processor during a concurrent cycle. Defaults to
	// 150 ms/GB.
	ConcurrentWorkPerGB simnet.Duration
}

func (c *Config) applyDefaults() error {
	if c.Kind != CollectorSerial && c.Kind != CollectorConcurrent {
		return fmt.Errorf("jvm: unknown collector kind %d", int(c.Kind))
	}
	if c.HeapBytes <= 0 {
		c.HeapBytes = 512 * MB
	}
	if c.TriggerFraction <= 0 || c.TriggerFraction > 1 {
		c.TriggerFraction = 0.9
	}
	if c.LiveFraction <= 0 || c.LiveFraction >= c.TriggerFraction {
		c.LiveFraction = 0.25
	}
	if c.SerialPausePerGB <= 0 {
		c.SerialPausePerGB = 600 * simnet.Millisecond
	}
	if c.ConcurrentPause <= 0 {
		c.ConcurrentPause = 4 * simnet.Millisecond
	}
	if c.ConcurrentWorkPerGB <= 0 {
		c.ConcurrentWorkPerGB = 150 * simnet.Millisecond
	}
	return nil
}

// Event is one logged collection, with its stop-the-world span(s).
type Event struct {
	// Start and End bound the whole collection cycle.
	Start, End simnet.Time
	// Pauses lists the stop-the-world spans within the cycle. For the
	// serial collector this is the whole cycle; for the concurrent
	// collector, the two brief mark phases.
	Pauses [][2]simnet.Time
	// CollectedBytes is how much garbage the cycle reclaimed.
	CollectedBytes int64
}

// Heap is an allocation-driven garbage-collected heap attached to a
// processor. Alloc is called by the server as requests are processed;
// collections pause or compete with that processor.
type Heap struct {
	engine *simnet.Engine
	proc   *cpu.Processor
	cfg    Config

	used    int64
	inGC    bool
	pending int64 // allocations arriving during a concurrent cycle
	log     []Event
}

// NewHeap creates a heap bound to the engine and processor.
func NewHeap(engine *simnet.Engine, proc *cpu.Processor, cfg Config) (*Heap, error) {
	if engine == nil {
		return nil, errors.New("jvm: nil engine")
	}
	if proc == nil {
		return nil, errors.New("jvm: nil processor")
	}
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return &Heap{engine: engine, proc: proc, cfg: cfg}, nil
}

// Used returns current heap occupancy in bytes.
func (h *Heap) Used() int64 { return h.used }

// InGC reports whether a collection cycle is in progress.
func (h *Heap) InGC() bool { return h.inGC }

// Collections returns the number of completed collections.
func (h *Heap) Collections() int { return len(h.log) }

// Log returns a copy of the GC event log.
func (h *Heap) Log() []Event {
	out := make([]Event, len(h.log))
	copy(out, h.log)
	return out
}

// Alloc records bytes of allocation and triggers a collection when the
// occupancy threshold is crossed.
func (h *Heap) Alloc(bytes int64) {
	if bytes <= 0 {
		return
	}
	if h.inGC {
		// The serial collector cannot really observe allocations (the app
		// is frozen), but the concurrent one can; buffering for both keeps
		// the accounting conservative.
		h.pending += bytes
		return
	}
	h.used += bytes
	if h.used > h.cfg.HeapBytes {
		h.used = h.cfg.HeapBytes
	}
	if float64(h.used) >= h.cfg.TriggerFraction*float64(h.cfg.HeapBytes) {
		h.collect()
	}
}

func (h *Heap) collect() {
	h.inGC = true
	start := h.engine.Now()
	live := int64(h.cfg.LiveFraction * float64(h.cfg.HeapBytes))
	collected := h.used - live
	if collected < 0 {
		collected = 0
	}
	gb := float64(collected) / float64(1024*MB)

	switch h.cfg.Kind {
	case CollectorSerial:
		pause := simnet.Duration(gb * float64(h.cfg.SerialPausePerGB))
		if pause < simnet.Millisecond {
			pause = simnet.Millisecond
		}
		h.proc.Pause()
		h.engine.Schedule(pause, func() {
			h.proc.Resume()
			end := h.engine.Now()
			h.finish(Event{
				Start:          start,
				End:            end,
				Pauses:         [][2]simnet.Time{{start, end}},
				CollectedBytes: collected,
			}, live)
		})
	case CollectorConcurrent:
		// Initial mark (STW) → concurrent work on the CPU → remark (STW).
		ev := Event{Start: start, CollectedBytes: collected}
		h.proc.Pause()
		h.engine.Schedule(h.cfg.ConcurrentPause, func() {
			h.proc.Resume()
			markEnd := h.engine.Now()
			ev.Pauses = append(ev.Pauses, [2]simnet.Time{start, markEnd})
			work := simnet.Duration(gb * float64(h.cfg.ConcurrentWorkPerGB))
			h.proc.Submit(work, func() {
				remarkStart := h.engine.Now()
				h.proc.Pause()
				h.engine.Schedule(h.cfg.ConcurrentPause, func() {
					h.proc.Resume()
					end := h.engine.Now()
					ev.Pauses = append(ev.Pauses, [2]simnet.Time{remarkStart, end})
					ev.End = end
					h.finish(ev, live)
				})
			})
		})
	}
}

func (h *Heap) finish(ev Event, live int64) {
	h.log = append(h.log, ev)
	h.inGC = false
	h.used = live + h.pending
	h.pending = 0
	if float64(h.used) >= h.cfg.TriggerFraction*float64(h.cfg.HeapBytes) {
		// Back-to-back collection: allocation pressure outran the cycle.
		h.collect()
	}
}

// RunningRatio returns, per interval, the fraction of wall time spent in
// stop-the-world GC pauses — the paper's "Java GC running ratio"
// (footnote 5, Fig 10a).
func (h *Heap) RunningRatio(start, end simnet.Time, width simnet.Duration) (*metrics.IntervalSeries, error) {
	acc := metrics.NewStepAccumulator(0)
	for _, ev := range h.log {
		for _, p := range ev.Pauses {
			acc.Change(p[0], 1)
			acc.Change(p[1], -1)
		}
	}
	s, err := acc.Average(start, end, width)
	if err != nil {
		return nil, fmt.Errorf("jvm: running ratio: %w", err)
	}
	return s, nil
}

// TotalPause returns the cumulative stop-the-world time across all logged
// collections.
func (h *Heap) TotalPause() simnet.Duration {
	var total simnet.Duration
	for _, ev := range h.log {
		for _, p := range ev.Pauses {
			total += p[1] - p[0]
		}
	}
	return total
}
