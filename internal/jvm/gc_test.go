package jvm

import (
	"math"
	"testing"

	"transientbd/internal/cpu"
	"transientbd/internal/simnet"
)

func newHeapForTest(t *testing.T, e *simnet.Engine, cfg Config) (*Heap, *cpu.Processor) {
	t.Helper()
	proc, err := cpu.NewProcessor(e, cpu.Config{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeap(e, proc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h, proc
}

func TestNewHeapValidation(t *testing.T) {
	e := simnet.NewEngine()
	proc, err := cpu.NewProcessor(e, cpu.Config{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHeap(nil, proc, Config{Kind: CollectorSerial}); err == nil {
		t.Error("want error for nil engine")
	}
	if _, err := NewHeap(e, nil, Config{Kind: CollectorSerial}); err == nil {
		t.Error("want error for nil processor")
	}
	if _, err := NewHeap(e, proc, Config{}); err == nil {
		t.Error("want error for missing collector kind")
	}
}

func TestCollectorKindString(t *testing.T) {
	if CollectorSerial.String() != "serial (JDK 1.5)" {
		t.Errorf("serial String = %q", CollectorSerial.String())
	}
	if CollectorConcurrent.String() != "concurrent (JDK 1.6)" {
		t.Errorf("concurrent String = %q", CollectorConcurrent.String())
	}
	if CollectorKind(0).String() != "CollectorKind(0)" {
		t.Errorf("unknown kind String = %q", CollectorKind(0).String())
	}
}

func TestAllocationAccumulates(t *testing.T) {
	e := simnet.NewEngine()
	h, _ := newHeapForTest(t, e, Config{Kind: CollectorSerial, HeapBytes: 100 * MB})
	h.Alloc(10 * MB)
	h.Alloc(5 * MB)
	h.Alloc(0)  // ignored
	h.Alloc(-3) // ignored
	if h.Used() != 15*MB {
		t.Errorf("Used = %d, want 15MB", h.Used())
	}
	if h.Collections() != 0 {
		t.Errorf("Collections = %d, want 0", h.Collections())
	}
}

func TestSerialGCTriggersAndPauses(t *testing.T) {
	e := simnet.NewEngine()
	h, proc := newHeapForTest(t, e, Config{
		Kind:             CollectorSerial,
		HeapBytes:        100 * MB,
		TriggerFraction:  0.9,
		LiveFraction:     0.2,
		SerialPausePerGB: 1000 * simnet.Millisecond,
	})
	h.Alloc(90 * MB) // crosses 90% threshold
	if !h.InGC() {
		t.Fatal("GC did not trigger at threshold")
	}
	if !proc.Paused() {
		t.Fatal("serial GC did not pause the processor (must be stop-the-world)")
	}
	if err := e.Run(10 * simnet.Second); err != nil {
		t.Fatal(err)
	}
	if h.InGC() {
		t.Error("GC never finished")
	}
	if proc.Paused() {
		t.Error("processor still paused after GC")
	}
	if h.Collections() != 1 {
		t.Fatalf("Collections = %d, want 1", h.Collections())
	}
	ev := h.Log()[0]
	// Collected 90-20=70MB at 1000ms/GB → ~68.4ms pause.
	wantPause := 70.0 / 1024.0 * 1000.0 // ms
	gotPause := (ev.End - ev.Start).Millis()
	if math.Abs(gotPause-wantPause) > 1 {
		t.Errorf("pause = %.2fms, want ~%.2fms", gotPause, wantPause)
	}
	if len(ev.Pauses) != 1 {
		t.Errorf("serial GC pauses = %d, want 1 (whole cycle)", len(ev.Pauses))
	}
	if ev.CollectedBytes != 70*MB {
		t.Errorf("CollectedBytes = %d, want 70MB", ev.CollectedBytes)
	}
	if h.Used() != 20*MB {
		t.Errorf("post-GC Used = %d, want live set 20MB", h.Used())
	}
}

func TestSerialGCFreezesJobs(t *testing.T) {
	e := simnet.NewEngine()
	h, proc := newHeapForTest(t, e, Config{
		Kind:             CollectorSerial,
		HeapBytes:        100 * MB,
		SerialPausePerGB: 1024 * simnet.Millisecond, // 1ms per MB: 65MB -> 65ms
		TriggerFraction:  0.9,
		LiveFraction:     0.25,
	})
	var doneAt simnet.Time = -1
	proc.Submit(10*simnet.Millisecond, func() { doneAt = e.Now() })
	e.Schedule(5*simnet.Millisecond, func() { h.Alloc(90 * MB) })
	if err := e.Run(simnet.Second); err != nil {
		t.Fatal(err)
	}
	// Job: 5ms progress, then frozen for (90-25)MB * 1ms = 65ms, then 5ms.
	want := 75 * simnet.Millisecond
	if doneAt != want {
		t.Errorf("job finished at %v, want %v", doneAt, want)
	}
}

func TestAllocDuringGCBuffered(t *testing.T) {
	e := simnet.NewEngine()
	h, _ := newHeapForTest(t, e, Config{
		Kind:            CollectorSerial,
		HeapBytes:       100 * MB,
		TriggerFraction: 0.9,
		LiveFraction:    0.2,
	})
	h.Alloc(90 * MB)
	if !h.InGC() {
		t.Fatal("GC should be running")
	}
	h.Alloc(7 * MB) // arrives mid-GC
	if err := e.Run(10 * simnet.Second); err != nil {
		t.Fatal(err)
	}
	if h.Used() != 27*MB {
		t.Errorf("post-GC Used = %dMB, want live 20MB + pending 7MB", h.Used()/MB)
	}
}

func TestConcurrentGCShortPauses(t *testing.T) {
	e := simnet.NewEngine()
	h, proc := newHeapForTest(t, e, Config{
		Kind:                CollectorConcurrent,
		HeapBytes:           100 * MB,
		TriggerFraction:     0.9,
		LiveFraction:        0.2,
		ConcurrentPause:     4 * simnet.Millisecond,
		ConcurrentWorkPerGB: 1000 * simnet.Millisecond,
	})
	h.Alloc(90 * MB)
	if err := e.Run(10 * simnet.Second); err != nil {
		t.Fatal(err)
	}
	if h.Collections() != 1 {
		t.Fatalf("Collections = %d, want 1", h.Collections())
	}
	ev := h.Log()[0]
	if len(ev.Pauses) != 2 {
		t.Fatalf("concurrent GC pauses = %d, want 2 (mark + remark)", len(ev.Pauses))
	}
	for i, p := range ev.Pauses {
		span := p[1] - p[0]
		if span != 4*simnet.Millisecond {
			t.Errorf("pause %d span = %v, want 4ms", i, span)
		}
	}
	// Total STW time is far shorter than a serial collection of the same
	// heap — the mechanism behind Fig 11's improvement.
	if got := h.TotalPause(); got != 8*simnet.Millisecond {
		t.Errorf("TotalPause = %v, want 8ms", got)
	}
	if proc.Paused() {
		t.Error("processor left paused")
	}
}

func TestConcurrentGCCompetesForCPU(t *testing.T) {
	e := simnet.NewEngine()
	h, proc := newHeapForTest(t, e, Config{
		Kind:                CollectorConcurrent,
		HeapBytes:           1024 * MB,
		TriggerFraction:     0.9,
		LiveFraction:        0.1,
		ConcurrentPause:     simnet.Millisecond,
		ConcurrentWorkPerGB: 100 * simnet.Millisecond,
	})
	h.Alloc(922 * MB) // trigger: collected ≈ 820MB → ~80ms background work
	// On a single core, an app job submitted after the cycle starts must
	// wait for the background GC job.
	var doneAt simnet.Time = -1
	e.Schedule(2*simnet.Millisecond, func() {
		proc.Submit(10*simnet.Millisecond, func() { doneAt = e.Now() })
	})
	if err := e.Run(10 * simnet.Second); err != nil {
		t.Fatal(err)
	}
	if doneAt < 80*simnet.Millisecond {
		t.Errorf("app job finished at %v; expected delay behind ~80ms GC work", doneAt)
	}
}

func TestBackToBackCollection(t *testing.T) {
	e := simnet.NewEngine()
	h, _ := newHeapForTest(t, e, Config{
		Kind:            CollectorSerial,
		HeapBytes:       100 * MB,
		TriggerFraction: 0.9,
		LiveFraction:    0.2,
	})
	h.Alloc(90 * MB)
	// Huge allocation during GC: after the cycle, occupancy is again above
	// the threshold, forcing an immediate second collection.
	h.Alloc(85 * MB)
	if err := e.Run(10 * simnet.Second); err != nil {
		t.Fatal(err)
	}
	if h.Collections() != 2 {
		t.Errorf("Collections = %d, want 2 (back-to-back)", h.Collections())
	}
}

func TestRunningRatio(t *testing.T) {
	e := simnet.NewEngine()
	h, _ := newHeapForTest(t, e, Config{
		Kind:             CollectorSerial,
		HeapBytes:        100 * MB,
		TriggerFraction:  0.9,
		LiveFraction:     0.2,
		SerialPausePerGB: 1024 * simnet.Millisecond, // 1ms/MB → 70ms pause
	})
	e.Schedule(100*simnet.Millisecond, func() { h.Alloc(90 * MB) })
	if err := e.Run(simnet.Second); err != nil {
		t.Fatal(err)
	}
	ratio, err := h.RunningRatio(0, simnet.Second, 100*simnet.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// GC spans [100ms, 170ms): interval 1 fully in GC 70%.
	if got := ratio.Value(0); got != 0 {
		t.Errorf("interval 0 ratio = %v, want 0", got)
	}
	if got := ratio.Value(1); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("interval 1 ratio = %v, want 0.7", got)
	}
	if got := ratio.Value(2); got != 0 {
		t.Errorf("interval 2 ratio = %v, want 0", got)
	}
}

func TestHeapClampsAtCapacity(t *testing.T) {
	e := simnet.NewEngine()
	h, _ := newHeapForTest(t, e, Config{
		Kind:            CollectorSerial,
		HeapBytes:       100 * MB,
		TriggerFraction: 0.99,
		LiveFraction:    0.2,
	})
	h.Alloc(500 * MB) // more than the heap: clamped, triggers GC
	if err := e.Run(10 * simnet.Second); err != nil {
		t.Fatal(err)
	}
	if h.Collections() != 1 {
		t.Errorf("Collections = %d, want 1", h.Collections())
	}
	if h.Log()[0].CollectedBytes != 80*MB {
		t.Errorf("CollectedBytes = %dMB, want 80MB (clamped heap - live)", h.Log()[0].CollectedBytes/MB)
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{Kind: CollectorConcurrent}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.HeapBytes != 512*MB {
		t.Errorf("default heap = %d", cfg.HeapBytes)
	}
	if cfg.TriggerFraction != 0.9 || cfg.LiveFraction != 0.25 {
		t.Errorf("default fractions = %v/%v", cfg.TriggerFraction, cfg.LiveFraction)
	}
	if cfg.SerialPausePerGB != 600*simnet.Millisecond {
		t.Errorf("default serial pause = %v", cfg.SerialPausePerGB)
	}
	bad := Config{Kind: CollectorKind(99)}
	if err := bad.applyDefaults(); err == nil {
		t.Error("want error for unknown kind")
	}
}
