package agent

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"transientbd/internal/wire"
)

// TestAgentBackoffBoundedAndResets pins the reconnect backoff schedule
// with a fake clock: jitter may never push a sleep past BackoffMax, and
// a completed handshake resets the next sleep to base scale. Rand is
// pinned to its supremum (worst-case jitter) and Sleep only records, so
// the schedule is exact and the test is instant.
func TestAgentBackoffBoundedAndResets(t *testing.T) {
	// Session 0 (dial attempt 4): welcome, ack one batch, cut — enough
	// to count as a successful handshake. Session 1 (attempt 7): run to
	// clean completion.
	srv := newScriptedServer(t, func(sess int, conn net.Conn) {
		r, w := wire.NewReader(conn), wire.NewWriter(conn)
		readHello(t, r)
		w.WriteWelcome(wire.Welcome{Version: wire.Version})
		w.Flush()
		for {
			f, err := r.Read()
			if err != nil {
				return
			}
			switch f.Type {
			case wire.TypeBatch:
				w.WriteAck(wire.Ack{Seq: f.Batch.Seq})
				if sess == 0 {
					w.Flush()
					return // hard cut after first ack
				}
			case wire.TypeHeartbeat:
				w.WriteAck(wire.Ack{Seq: 0})
			case wire.TypeGoodbye:
				w.WriteGoodbye(wire.Goodbye{FinalSeq: f.Goodbye.FinalSeq, Reason: "ack"})
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	})
	defer srv.close()

	var dials int
	var sleeps []time.Duration
	cfg := testCfg(srv.addr())
	cfg.BackoffBase = 100 * time.Millisecond
	cfg.BackoffMax = 500 * time.Millisecond
	cfg.Rand = func() float64 { return 1.0 } // worst-case jitter: 1.5×
	cfg.Sleep = func(ctx context.Context, d time.Duration) error {
		sleeps = append(sleeps, d)
		return nil
	}
	cfg.Dial = func(addr string) (net.Conn, error) {
		dials++
		switch dials {
		case 4, 7:
			return net.Dial("tcp", addr)
		default:
			return nil, errors.New("synthetic dial failure")
		}
	}

	_, feed := testFeed(t, 95)
	if _, err := Run(context.Background(), bytes.NewReader(feed), cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Three failures (150, 300, clamp 400×1.5→500), a successful session,
	// then the reset is visible: the very next sleep is back at 1.5×base.
	want := []time.Duration{
		150 * time.Millisecond,
		300 * time.Millisecond,
		500 * time.Millisecond, // 600 ms of jitter clamped at BackoffMax
		150 * time.Millisecond, // reset after the successful session
		300 * time.Millisecond,
		500 * time.Millisecond,
	}
	if len(sleeps) != len(want) {
		t.Fatalf("recorded sleeps %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleep[%d] = %v, want %v (full schedule %v)", i, sleeps[i], want[i], sleeps)
		}
	}
	for _, d := range sleeps {
		if d > cfg.BackoffMax {
			t.Fatalf("sleep %v exceeds BackoffMax %v", d, cfg.BackoffMax)
		}
	}
}

// ackingServer records applied batch sequences (dedup + order checked
// by the caller) and acks everything, echoing the Goodbye.
func ackingServer(t *testing.T, lastAcked uint64, mu *sync.Mutex, applied *[]uint64) func(int, net.Conn) {
	return func(_ int, conn net.Conn) {
		r, w := wire.NewReader(conn), wire.NewWriter(conn)
		h := readHello(t, r)
		if h.Version != wire.Version {
			t.Errorf("hello version = %d, want %d", h.Version, wire.Version)
		}
		w.WriteWelcome(wire.Welcome{Version: wire.Version, LastAcked: lastAcked})
		w.Flush()
		for {
			f, err := r.Read()
			if err != nil {
				return
			}
			switch f.Type {
			case wire.TypeBatch:
				mu.Lock()
				*applied = append(*applied, f.Batch.Seq)
				mu.Unlock()
				w.WriteAck(wire.Ack{Seq: f.Batch.Seq})
			case wire.TypeHeartbeat:
				w.WriteAck(wire.Ack{Seq: 0})
			case wire.TypeGoodbye:
				w.WriteGoodbye(wire.Goodbye{FinalSeq: f.Goodbye.FinalSeq, Reason: "ack"})
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// TestAgentWALSpillAbsorbsHeadOutage: the head is unreachable until the
// entire source — ten times the send window — has been read. Without a
// WAL the window would stall the read at Window batches; with one, the
// disk absorbs the rest, and once the head appears everything is
// delivered in order with nothing dropped.
func TestAgentWALSpillAbsorbsHeadOutage(t *testing.T) {
	var mu sync.Mutex
	var applied []uint64
	srv := newScriptedServer(t, ackingServer(t, 0, &mu, &applied))
	defer srv.close()

	var drained atomic.Bool
	cfg := testCfg(srv.addr())
	cfg.Window = 2
	cfg.WALDir = t.TempDir()
	cfg.WALNoSync = true
	cfg.OnSourceDrained = func() { drained.Store(true) }
	cfg.Dial = func(addr string) (net.Conn, error) {
		if !drained.Load() {
			return nil, errors.New("head down")
		}
		return net.Dial("tcp", addr)
	}

	vs, feed := testFeed(t, 200) // 20 batches of 10 = 10× the window
	m, err := Run(context.Background(), bytes.NewReader(feed), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(applied) != 20 {
		t.Fatalf("head applied %d batches (%v), want 20", len(applied), applied)
	}
	for i, s := range applied {
		if s != uint64(i+1) {
			t.Fatalf("out-of-order or dropped delivery: %v", applied)
		}
	}
	if m.WALAppended != 20 {
		t.Errorf("WALAppended = %d, want 20 (every batch durable)", m.WALAppended)
	}
	// Ring caches 2, the other 18 waited on disk.
	if m.WALSpillPeak != 18 {
		t.Errorf("WALSpillPeak = %d, want 18", m.WALSpillPeak)
	}
	if m.RecordsSent != int64(len(vs)) {
		t.Errorf("RecordsSent = %d, want %d", m.RecordsSent, len(vs))
	}
	if m.BatchesAcked != 20 {
		t.Errorf("BatchesAcked = %d, want 20", m.BatchesAcked)
	}
}

// TestAgentRestartReplaysWAL is the kill -9 property at the agent level:
// run 1 delivers three batches, spills the rest through an outage, and
// is killed mid-outage; run 2 (same WAL directory, fresh source re-read)
// replays the log from the head's resume cursor. The head must see every
// batch exactly once across both incarnations.
func TestAgentRestartReplaysWAL(t *testing.T) {
	walDir := t.TempDir()
	_, feed := testFeed(t, 100) // 10 batches of 10

	// ---- Run 1: head acks 1..3 then vanishes; agent killed mid-outage.
	drainedCh := make(chan struct{})
	srv1 := newScriptedServer(t, func(sess int, conn net.Conn) {
		if sess > 0 {
			return // outage: connection cut before any handshake
		}
		r, w := wire.NewReader(conn), wire.NewWriter(conn)
		readHello(t, r)
		w.WriteWelcome(wire.Welcome{Version: wire.Version})
		w.Flush()
		for {
			f, err := r.Read()
			if err != nil {
				return
			}
			if f.Type == wire.TypeBatch {
				w.WriteAck(wire.Ack{Seq: f.Batch.Seq})
				w.Flush()
				if f.Batch.Seq == 3 {
					return // head dies
				}
			}
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	cfg := testCfg(srv1.addr())
	cfg.Window = 2
	cfg.WALDir = walDir
	cfg.WALSegmentBytes = 128 // one batch per segment: exact truncation
	cfg.WALNoSync = true
	var drainOnce sync.Once
	cfg.OnSourceDrained = func() { drainOnce.Do(func() { close(drainedCh) }) }

	errCh := make(chan error, 1)
	var m1 Metrics
	go func() {
		var err error
		m1, err = Run(ctx, bytes.NewReader(feed), cfg)
		errCh <- err
	}()
	<-drainedCh // every batch is on disk (or acked) now
	cancel()    // kill -9
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("run 1 ended with %v, want context.Canceled", err)
	}
	srv1.close()
	if m1.WALAppended != 10 {
		t.Fatalf("run 1 WALAppended = %d, want 10", m1.WALAppended)
	}

	// ---- Run 2: head is back, remembers acks through 3.
	var mu sync.Mutex
	var applied []uint64
	srv2 := newScriptedServer(t, ackingServer(t, 3, &mu, &applied))
	defer srv2.close()

	cfg2 := cfg
	cfg2.Addr = srv2.addr()
	cfg2.OnSourceDrained = nil
	cfg2.Dial = nil
	m2, err := Run(context.Background(), bytes.NewReader(feed), cfg2)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(applied) != 7 {
		t.Fatalf("run 2 delivered %d batches (%v), want 4..10", len(applied), applied)
	}
	for i, s := range applied {
		if s != uint64(i+4) {
			t.Fatalf("run 2 deliveries %v, want exactly 4..10 in order", applied)
		}
	}
	// Run 1's acks race the head's cut (a close with unread data RSTs
	// buffered acks away), so anywhere from zero to three truncations may
	// have landed — the head's resume cursor makes the leftovers moot.
	// What must hold: batches 4..10 survived on disk.
	if m2.WALRecovered < 7 || m2.WALRecovered > 10 {
		t.Errorf("WALRecovered = %d, want 7..10 (batches 4..10 must survive on disk)", m2.WALRecovered)
	}
	if m2.WALCovered != 100 {
		t.Errorf("WALCovered = %d, want 100 (every re-read record covered by the log)", m2.WALCovered)
	}
	if m2.RecordsSent != 70 {
		t.Errorf("RecordsSent = %d, want 70", m2.RecordsSent)
	}
}

// authServer speaks the version-2 challenge/response with key,
// rejecting bad MACs, then acks everything.
func authServer(t *testing.T, key []byte, badProof bool, mu *sync.Mutex, applied *[]uint64) func(int, net.Conn) {
	return func(_ int, conn net.Conn) {
		r, w := wire.NewReader(conn), wire.NewWriter(conn)
		h := readHello(t, r)
		nh, err := wire.NewNonce()
		if err != nil {
			t.Errorf("nonce: %v", err)
			return
		}
		proof := wire.HeadProof(key, h.Nonce, nh)
		if badProof {
			proof[0] ^= 1
		}
		w.WriteChallenge(wire.Challenge{Nonce: nh, Proof: proof})
		w.Flush()
		f, err := r.Read()
		if err != nil || f.Type != wire.TypeAuth {
			return
		}
		if !wire.ProofEqual(f.Auth.MAC, wire.AgentProof(key, h.Node, h.Nonce, nh)) {
			w.WriteError(wire.ErrorFrame{Msg: "authentication failed"})
			w.Flush()
			return
		}
		w.WriteWelcome(wire.Welcome{Version: wire.Version})
		w.Flush()
		for {
			f, err := r.Read()
			if err != nil {
				return
			}
			switch f.Type {
			case wire.TypeBatch:
				if mu != nil {
					mu.Lock()
					*applied = append(*applied, f.Batch.Seq)
					mu.Unlock()
				}
				w.WriteAck(wire.Ack{Seq: f.Batch.Seq})
			case wire.TypeHeartbeat:
				w.WriteAck(wire.Ack{Seq: 0})
			case wire.TypeGoodbye:
				w.WriteGoodbye(wire.Goodbye{FinalSeq: f.Goodbye.FinalSeq, Reason: "ack"})
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

func TestAgentAuthHandshake(t *testing.T) {
	key := []byte("shared-secret")

	t.Run("matched key completes", func(t *testing.T) {
		var mu sync.Mutex
		var applied []uint64
		srv := newScriptedServer(t, authServer(t, key, false, &mu, &applied))
		defer srv.close()
		cfg := testCfg(srv.addr())
		cfg.AuthKey = key
		vs, feed := testFeed(t, 95)
		m, err := Run(context.Background(), bytes.NewReader(feed), cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if m.RecordsSent != int64(len(vs)) {
			t.Errorf("RecordsSent = %d, want %d", m.RecordsSent, len(vs))
		}
		mu.Lock()
		defer mu.Unlock()
		if len(applied) != 10 {
			t.Errorf("applied %d batches, want 10", len(applied))
		}
	})

	t.Run("wrong agent key rejected terminally", func(t *testing.T) {
		srv := newScriptedServer(t, authServer(t, key, false, nil, nil))
		defer srv.close()
		cfg := testCfg(srv.addr())
		cfg.AuthKey = []byte("not-the-secret")
		_, feed := testFeed(t, 30)
		_, err := Run(context.Background(), bytes.NewReader(feed), cfg)
		// The agent detects the mismatch itself (the head's proof fails
		// verification) — terminal either way, no retry storm.
		if err == nil || !strings.Contains(err.Error(), "authentication") {
			t.Fatalf("want terminal auth error, got %v", err)
		}
	})

	t.Run("keyless agent told to configure one", func(t *testing.T) {
		srv := newScriptedServer(t, authServer(t, key, false, nil, nil))
		defer srv.close()
		cfg := testCfg(srv.addr())
		_, feed := testFeed(t, 30)
		_, err := Run(context.Background(), bytes.NewReader(feed), cfg)
		if err == nil || !strings.Contains(err.Error(), "no shared key") {
			t.Fatalf("want missing-key error, got %v", err)
		}
	})

	t.Run("head with bad proof rejected by agent", func(t *testing.T) {
		srv := newScriptedServer(t, authServer(t, key, true, nil, nil))
		defer srv.close()
		cfg := testCfg(srv.addr())
		cfg.AuthKey = key
		_, feed := testFeed(t, 30)
		_, err := Run(context.Background(), bytes.NewReader(feed), cfg)
		if err == nil || !strings.Contains(err.Error(), "mutual authentication") {
			t.Fatalf("want mutual-auth failure, got %v", err)
		}
	})

	t.Run("keyed agent refuses unauthenticated head", func(t *testing.T) {
		srv := newScriptedServer(t, func(_ int, conn net.Conn) {
			r, w := wire.NewReader(conn), wire.NewWriter(conn)
			readHello(t, r)
			w.WriteWelcome(wire.Welcome{Version: wire.Version}) // no challenge
			w.Flush()
		})
		defer srv.close()
		cfg := testCfg(srv.addr())
		cfg.AuthKey = key
		_, feed := testFeed(t, 30)
		_, err := Run(context.Background(), bytes.NewReader(feed), cfg)
		if err == nil || !strings.Contains(err.Error(), "did not authenticate") {
			t.Fatalf("want downgrade refusal, got %v", err)
		}
	})
}

// TestAgentWALDirUnusableFailsFast: a WAL path that cannot hold a log
// (it is a file) fails the run before any dial.
func TestAgentWALDirUnusableFailsFast(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testCfg("127.0.0.1:1") // never dialed
	cfg.WALDir = path
	cfg.Dial = func(string) (net.Conn, error) {
		t.Error("dialed despite unusable WAL dir")
		return nil, fmt.Errorf("no")
	}
	_, feed := testFeed(t, 30)
	if _, err := Run(context.Background(), bytes.NewReader(feed), cfg); err == nil {
		t.Fatal("Run succeeded with a file as WAL dir")
	}
}
