// Package agent is the per-host half of distributed ingestion: it tails
// a JSONL visit source and ships sequence-numbered batches to the merge
// head (internal/merge) over the wire protocol (internal/wire).
//
// # Robustness contract
//
// The agent assumes the network fails and the head restarts rarely. Its
// job is to make both invisible to the analysis:
//
//   - Sequence numbers are positional in the source stream (batch k of a
//     fixed batch size is always sequence k), so a restarted agent
//     re-reading the same source regenerates identical batches and the
//     head's (node, seq) dedup turns redelivery into exactly-once
//     application.
//   - Every batch stays in an in-memory ring until the head acknowledges
//     it. On reconnect the agent resumes from Welcome.LastAcked: ring
//     entries at or below it are discarded, the rest are retransmitted
//     in order before any new batch.
//   - Reconnects use exponential backoff with jitter, so a flapping head
//     is not stampeded by its own agents.
//   - Heartbeats carry the newest departure among *acknowledged* batches
//     only. An unacknowledged batch may be lost with the connection, so
//     advertising its departures could let the barrier seal past records
//     the head never applied; acknowledged departures are safe by
//     construction.
//
// A handshake rejection (Error frame in place of Welcome, or a version
// mismatch) is terminal — retrying an incompatible head forever helps
// nobody. Every other failure reconnects.
package agent

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"transientbd/internal/simnet"
	"transientbd/internal/trace"
	"transientbd/internal/traceio"
	"transientbd/internal/wire"
)

// Config tunes one agent run.
type Config struct {
	// Node is this agent's stable identity — the key of the merge
	// head's dedup and watermark state. It must survive restarts (a
	// hostname, not a PID).
	Node string
	// Addr is the merge head's TCP address.
	Addr string
	// BatchSize is the records-per-batch cut. It is part of the resume
	// contract: sequence numbers are positional, so a restarted agent
	// must use the same batch size to regenerate the same sequences.
	// Default 512.
	BatchSize int
	// Window caps unacknowledged batches held in memory; the source
	// read stalls when the window is full (backpressure, bounded
	// memory). Default 64.
	Window int
	// HeartbeatEvery is the liveness cadence; each heartbeat is echoed
	// by the head, so it doubles as dead-connection detection. Default
	// 1 s.
	HeartbeatEvery time.Duration
	// IOTimeout bounds handshake reads and frame writes; the idle read
	// timeout is max(IOTimeout, 3×HeartbeatEvery). Default 10 s.
	IOTimeout time.Duration
	// BackoffBase and BackoffMax shape reconnect backoff (exponential,
	// ±50% jitter). Defaults 100 ms and 5 s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxDials caps *consecutive* failed connection attempts before the
	// run fails (the counter resets on a completed handshake). 0 means
	// retry forever (until the context cancels).
	MaxDials int
	// Lenient skips undecodable source lines (counted in
	// Metrics.Source) instead of failing the run.
	Lenient bool
	// Dial opens the transport. Injectable for tests and fault proxies.
	// Default net.Dial("tcp", addr).
	Dial func(addr string) (net.Conn, error)
	// Rand is the jitter source, injectable for determinism. Default
	// math/rand.Float64.
	Rand func() float64
	// Logf, when set, receives reconnect/backoff diagnostics.
	Logf func(format string, args ...any)
}

// Metrics summarizes one agent run.
type Metrics struct {
	// RecordsRead counts records decoded from the source; RecordsSent
	// counts records written to the wire at least once.
	RecordsRead int64
	RecordsSent int64
	// BatchesSent counts batch frames written (including retransmits);
	// Retransmits counts the re-sends among them; BatchesAcked counts
	// batches acknowledged by the head.
	BatchesSent  int64
	Retransmits  int64
	BatchesAcked int64
	// Reconnects counts sessions after the first.
	Reconnects int64
	// ResumeSkipped counts records never sent because the head had
	// already acknowledged their batch (restart fast-forward).
	ResumeSkipped int64
	// Source is the decode accounting of the JSONL reader.
	Source traceio.Stats
}

// batchRec is one ring entry: a cut batch awaiting acknowledgment.
type batchRec struct {
	seq       uint64
	visits    []trace.Visit
	maxDepart simnet.Time
	sent      bool
}

type readResult struct {
	stats traceio.Stats
	err   error
}

// run is the single-goroutine state of one Run call (the source reader
// and per-session frame reader are helpers feeding channels).
type run struct {
	cfg Config
	m   Metrics

	pending     []batchRec // unacked ring, ordered by seq
	nextSeq     uint64
	ackedSeq    uint64
	ackedDepart simnet.Time // newest departure among acked batches
	srcDone     bool
	finalSeq    uint64
	saidGoodbye bool

	srcCh   chan []trace.Visit
	readRes chan readResult
}

// Run ships src to the merge head and blocks until the head confirms
// the full stream (clean completion), the context cancels, or a
// terminal error occurs. The returned Metrics are valid in every case.
func Run(ctx context.Context, src io.Reader, cfg Config) (Metrics, error) {
	if cfg.Node == "" {
		return Metrics{}, errors.New("agent: Config.Node is required")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 10 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	a := &run{
		cfg:     cfg,
		nextSeq: 1,
		srcCh:   make(chan []trace.Visit, 1),
		readRes: make(chan readResult, 1),
	}
	go a.readSource(ctx, src)
	err := a.loop(ctx)
	return a.m, err
}

// readSource decodes the JSONL source into copied batches. The batch
// slice handed to the StreamVisits callback is reused, so each batch is
// copied before crossing the channel.
func (a *run) readSource(ctx context.Context, src io.Reader) {
	opts := traceio.StreamOptions{BatchSize: a.cfg.BatchSize}
	if a.cfg.Lenient {
		opts.Policy = traceio.Skip
	}
	stats, err := traceio.StreamVisitsOpts(src, opts, func(batch []trace.Visit) error {
		cp := make([]trace.Visit, len(batch))
		copy(cp, batch)
		select {
		case a.srcCh <- cp:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	close(a.srcCh)
	a.readRes <- readResult{stats: stats, err: err}
}

// loop runs sessions until clean completion or a terminal failure.
func (a *run) loop(ctx context.Context) error {
	backoff := a.cfg.BackoffBase
	fails := 0
	session := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if session > 0 || fails > 0 {
			if err := a.sleep(ctx, a.jitter(backoff)); err != nil {
				return err
			}
			if backoff *= 2; backoff > a.cfg.BackoffMax {
				backoff = a.cfg.BackoffMax
			}
		}
		conn, welcome, terminal, err := a.connect(ctx)
		if terminal {
			if a.delivered() {
				// Every batch through finalSeq is acked and durable; the
				// only frame left was the EOF notice (our Goodbye echo was
				// lost with the previous connection). A head that rejects
				// the reconnect now is draining or completing — it has no
				// more need of the notice, so this run is complete, not
				// failed.
				a.cfg.Logf("agent %s: head rejected reconnect after full delivery (%v); exiting clean", a.cfg.Node, err)
				return nil
			}
			return err
		}
		if err != nil {
			fails++
			if a.cfg.MaxDials > 0 && fails >= a.cfg.MaxDials {
				return fmt.Errorf("agent: giving up after %d consecutive failed connection attempts: %w", fails, err)
			}
			a.cfg.Logf("agent %s: connect: %v (attempt %d)", a.cfg.Node, err, fails)
			continue
		}
		fails = 0
		backoff = a.cfg.BackoffBase
		session++
		if session > 1 {
			a.m.Reconnects++
		}
		a.fastForward(welcome.LastAcked)
		// A Goodbye whose echo was lost with the old connection must be
		// re-sent on this one (the head's EOF handling is idempotent).
		a.saidGoodbye = false
		done, err := a.session(ctx, conn)
		if done {
			return nil
		}
		if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
			return err
		}
		var term *terminalError
		if errors.As(err, &term) {
			return term.err
		}
		a.cfg.Logf("agent %s: session ended: %v (reconnecting)", a.cfg.Node, err)
	}
}

// delivered reports whether every source record is durably applied at
// the head: the source is exhausted and no batch awaits an ack. Once
// true, the only frame left to send is the EOF notice (Goodbye).
func (a *run) delivered() bool { return a.srcDone && len(a.pending) == 0 }

// terminalError marks failures no reconnect can fix (source read
// failure, handshake rejection).
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }

func (a *run) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jitter spreads d over [0.5d, 1.5d) so agents reconnecting after the
// same head failure do not stampede it in lockstep.
func (a *run) jitter(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.5 + a.cfg.Rand()))
}

// connect dials and handshakes once. terminal=true means the error is
// not retryable (version rejection, protocol confusion).
func (a *run) connect(ctx context.Context) (net.Conn, wire.Welcome, bool, error) {
	conn, err := a.cfg.Dial(a.cfg.Addr)
	if err != nil {
		return nil, wire.Welcome{}, false, err
	}
	conn.SetDeadline(time.Now().Add(a.cfg.IOTimeout))
	// FirstSeq: the lowest batch this agent can still transmit — the
	// ring's head, or the next sequence to be produced when nothing is
	// pending. It lets the head reject (rather than silently skip past) a
	// first batch that lost its predecessors in transit.
	first := a.nextSeq
	if len(a.pending) > 0 {
		first = a.pending[0].seq
	}
	w := wire.NewWriter(conn)
	err = w.WriteHello(wire.Hello{Version: wire.Version, Node: a.cfg.Node, FirstSeq: first})
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		conn.Close()
		return nil, wire.Welcome{}, false, err
	}
	f, err := wire.NewReader(conn).Read()
	if err != nil {
		conn.Close()
		return nil, wire.Welcome{}, false, fmt.Errorf("agent: handshake read: %w", err)
	}
	switch f.Type {
	case wire.TypeError:
		conn.Close()
		return nil, wire.Welcome{}, true, fmt.Errorf("agent: rejected by merge head: %s", f.Error.Msg)
	case wire.TypeWelcome:
		if f.Welcome.Version != wire.Version {
			conn.Close()
			return nil, wire.Welcome{}, true, fmt.Errorf("agent: merge head speaks protocol version %d, this build speaks %d", f.Welcome.Version, wire.Version)
		}
	default:
		conn.Close()
		return nil, wire.Welcome{}, true, fmt.Errorf("agent: unexpected handshake frame type %d", f.Type)
	}
	conn.SetDeadline(time.Time{})
	return conn, f.Welcome, false, nil
}

// fastForward applies the head's resume cursor: ring entries at or
// below lastAcked were durably applied by a previous session and are
// discarded. A cursor *behind* our own acknowledgment state means the
// head restarted cold and its memory of those batches is gone — the
// records are lost to the analysis (the head accepts the ring's first
// batch at any sequence), which is logged, never silent.
func (a *run) fastForward(lastAcked uint64) {
	if lastAcked > a.ackedSeq {
		a.ackedSeq = lastAcked
		a.popAcked(lastAcked)
	} else if lastAcked < a.ackedSeq {
		a.cfg.Logf("agent %s: merge head resume cursor %d behind ours %d (head restarted cold; acknowledged batches between are lost)",
			a.cfg.Node, lastAcked, a.ackedSeq)
	}
}

// popAcked discards ring entries with seq ≤ s and advances the
// acknowledged-departure horizon.
func (a *run) popAcked(s uint64) {
	cut := 0
	for cut < len(a.pending) && a.pending[cut].seq <= s {
		if a.pending[cut].maxDepart > a.ackedDepart {
			a.ackedDepart = a.pending[cut].maxDepart
		}
		a.m.BatchesAcked++
		cut++
	}
	if cut > 0 {
		a.pending = a.pending[:copy(a.pending, a.pending[cut:])]
	}
}

type inFrame struct {
	f   wire.Frame
	err error
}

// session runs one connection to completion: retransmit the ring, then
// stream new batches, heartbeats and acknowledgments until the head
// echoes our Goodbye (done), the connection fails (reconnect), or the
// context cancels. Single writer: only this goroutine touches w.
func (a *run) session(ctx context.Context, conn net.Conn) (bool, error) {
	defer conn.Close()
	w := wire.NewWriter(conn)
	idle := a.cfg.IOTimeout
	if hb3 := 3 * a.cfg.HeartbeatEvery; hb3 > idle {
		idle = hb3
	}

	stop := make(chan struct{})
	defer close(stop)
	inCh := make(chan inFrame, 8)
	go func() {
		r := wire.NewReader(conn)
		for {
			conn.SetReadDeadline(time.Now().Add(idle))
			f, err := r.Read()
			select {
			case inCh <- inFrame{f, err}:
			case <-stop:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	flush := func() error {
		conn.SetWriteDeadline(time.Now().Add(a.cfg.IOTimeout))
		return w.Flush()
	}

	// Retransmit the unacknowledged ring in order before anything new.
	for i := range a.pending {
		rec := &a.pending[i]
		if err := w.WriteBatch(wire.Batch{Seq: rec.seq, Visits: rec.visits}); err != nil {
			return false, err
		}
		a.m.BatchesSent++
		if rec.sent {
			a.m.Retransmits++
		} else {
			rec.sent = true
			a.m.RecordsSent += int64(len(rec.visits))
		}
	}
	if len(a.pending) > 0 {
		if err := flush(); err != nil {
			return false, err
		}
	}
	if err := a.maybeGoodbye(w, flush); err != nil {
		return false, err
	}

	hb := time.NewTicker(a.cfg.HeartbeatEvery)
	defer hb.Stop()
	for {
		srcIn := a.srcCh
		if a.srcDone || len(a.pending) >= a.cfg.Window {
			srcIn = nil
		}
		select {
		case <-ctx.Done():
			return false, ctx.Err()

		case visits, ok := <-srcIn:
			if !ok {
				res := <-a.readRes
				a.m.Source = res.stats
				a.srcDone = true
				a.finalSeq = a.nextSeq - 1
				if res.err != nil {
					return false, &terminalError{fmt.Errorf("agent: source read: %w", res.err)}
				}
				if err := a.maybeGoodbye(w, flush); err != nil {
					return false, err
				}
				continue
			}
			seq := a.nextSeq
			a.nextSeq++
			a.m.RecordsRead += int64(len(visits))
			if seq <= a.ackedSeq {
				// Restart fast-forward: the head already applied this batch
				// in a previous incarnation of this agent.
				a.m.ResumeSkipped += int64(len(visits))
				continue
			}
			var md simnet.Time
			for i := range visits {
				if visits[i].Depart > md {
					md = visits[i].Depart
				}
			}
			a.pending = append(a.pending, batchRec{seq: seq, visits: visits, maxDepart: md, sent: true})
			if err := w.WriteBatch(wire.Batch{Seq: seq, Visits: visits}); err != nil {
				return false, err
			}
			if err := flush(); err != nil {
				return false, err
			}
			a.m.BatchesSent++
			a.m.RecordsSent += int64(len(visits))

		case in := <-inCh:
			if in.err != nil {
				return false, in.err
			}
			switch in.f.Type {
			case wire.TypeAck:
				if s := in.f.Ack.Seq; s > a.ackedSeq {
					a.ackedSeq = s
					a.popAcked(s)
				}
				if err := a.maybeGoodbye(w, flush); err != nil {
					return false, err
				}
			case wire.TypeGoodbye:
				// The head confirmed our Goodbye: every batch through
				// FinalSeq is applied. Clean completion.
				return true, nil
			case wire.TypeError:
				return false, fmt.Errorf("agent: merge head error: %s", in.f.Error.Msg)
			default:
				return false, fmt.Errorf("agent: unexpected frame type %d mid-session", in.f.Type)
			}

		case <-hb.C:
			if err := w.WriteHeartbeat(wire.Heartbeat{MaxDepart: a.ackedDepart}); err != nil {
				return false, err
			}
			if err := flush(); err != nil {
				return false, err
			}
		}
	}
}

// maybeGoodbye sends the end-of-stream frame once the source is
// exhausted and every batch is acknowledged. Idempotent per session;
// safe to re-send on a later session (the head's EOF is idempotent
// too).
func (a *run) maybeGoodbye(w *wire.Writer, flush func() error) error {
	if !a.srcDone || len(a.pending) > 0 || a.saidGoodbye {
		return nil
	}
	if err := w.WriteGoodbye(wire.Goodbye{FinalSeq: a.finalSeq, Reason: "eof"}); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	a.saidGoodbye = true
	return nil
}
