// Package agent is the per-host half of distributed ingestion: it tails
// a JSONL visit source and ships sequence-numbered batches to the merge
// head (internal/merge) over the wire protocol (internal/wire).
//
// # Robustness contract
//
// The agent assumes the network fails and the head restarts rarely. Its
// job is to make both invisible to the analysis:
//
//   - Sequence numbers are positional in the source stream (batch k of a
//     fixed batch size is always sequence k), so a restarted agent
//     re-reading the same source regenerates identical batches and the
//     head's (node, seq) dedup turns redelivery into exactly-once
//     application.
//   - Every batch stays in an in-memory ring until the head acknowledges
//     it. On reconnect the agent resumes from Welcome.LastAcked: ring
//     entries at or below it are discarded, the rest are retransmitted
//     in order before any new batch.
//   - Reconnects use exponential backoff with jitter, so a flapping head
//     is not stampeded by its own agents.
//   - Heartbeats carry the newest departure among *acknowledged* batches
//     only. An unacknowledged batch may be lost with the connection, so
//     advertising its departures could let the barrier seal past records
//     the head never applied; acknowledged departures are safe by
//     construction.
//
// A handshake rejection (Error frame in place of Welcome, or a version
// mismatch) is terminal — retrying an incompatible head forever helps
// nobody. Every other failure reconnects.
package agent

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"transientbd/internal/simnet"
	"transientbd/internal/trace"
	"transientbd/internal/traceio"
	"transientbd/internal/wire"
)

// Config tunes one agent run.
type Config struct {
	// Node is this agent's stable identity — the key of the merge
	// head's dedup and watermark state. It must survive restarts (a
	// hostname, not a PID).
	Node string
	// Addr is the merge head's TCP address.
	Addr string
	// BatchSize is the records-per-batch cut. It is part of the resume
	// contract: sequence numbers are positional, so a restarted agent
	// must use the same batch size to regenerate the same sequences.
	// Default 512.
	BatchSize int
	// Window caps unacknowledged batches held in memory; the source
	// read stalls when the window is full (backpressure, bounded
	// memory). Default 64.
	Window int
	// HeartbeatEvery is the liveness cadence; each heartbeat is echoed
	// by the head, so it doubles as dead-connection detection. Default
	// 1 s.
	HeartbeatEvery time.Duration
	// IOTimeout bounds handshake reads and frame writes; the idle read
	// timeout is max(IOTimeout, 3×HeartbeatEvery). Default 10 s.
	IOTimeout time.Duration
	// BackoffBase and BackoffMax shape reconnect backoff (exponential,
	// ±50% jitter). Defaults 100 ms and 5 s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxDials caps *consecutive* failed connection attempts before the
	// run fails (the counter resets on a completed handshake). 0 means
	// retry forever (until the context cancels).
	MaxDials int
	// Lenient skips undecodable source lines (counted in
	// Metrics.Source) instead of failing the run.
	Lenient bool
	// WALDir, when set, enables the write-ahead log: every cut batch is
	// appended there before entering the send ring, a head outage
	// longer than the window spills to disk instead of stalling the
	// source read, and a restarted agent replays the log so `kill -9`
	// is byte-equivalent to an uninterrupted run. The directory must be
	// stable across restarts, one per node.
	WALDir string
	// WALSegmentBytes is the log's segment rotation threshold (default
	// 4 MiB); WALNoSync skips the per-append fsync (tests).
	WALSegmentBytes int
	WALNoSync       bool
	// AuthKey, when set, is the shared key for the mutual HMAC
	// handshake (wire protocol version 2). The head must hold the same
	// key; a mismatch — either direction — is a terminal error, and an
	// authenticating agent refuses a head that skips the challenge.
	AuthKey []byte
	// Dial opens the transport. Injectable for tests, fault proxies and
	// TLS (the CLI wraps tls.Dial here). Default net.Dial("tcp", addr).
	Dial func(addr string) (net.Conn, error)
	// Rand is the jitter source, injectable for determinism. Default
	// math/rand.Float64.
	Rand func() float64
	// Sleep waits out reconnect backoff, injectable so tests can pin
	// the backoff schedule with a fake clock. Default: a timer that
	// also honors context cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnSourceDrained, when set, is called once when the source reader
	// is exhausted — including between sessions, where spill mode keeps
	// consuming it. Tests use it to know the WAL holds the full feed.
	OnSourceDrained func()
	// Logf, when set, receives reconnect/backoff diagnostics.
	Logf func(format string, args ...any)
}

// Metrics summarizes one agent run.
type Metrics struct {
	// RecordsRead counts records decoded from the source; RecordsSent
	// counts records written to the wire at least once.
	RecordsRead int64
	RecordsSent int64
	// BatchesSent counts batch frames written (including retransmits);
	// Retransmits counts the re-sends among them; BatchesAcked counts
	// batches acknowledged by the head.
	BatchesSent  int64
	Retransmits  int64
	BatchesAcked int64
	// Reconnects counts sessions after the first.
	Reconnects int64
	// ResumeSkipped counts records never sent because the head had
	// already acknowledged their batch (restart fast-forward).
	ResumeSkipped int64
	// WALAppended counts batches made durable in the write-ahead log;
	// WALRecovered counts batches found in the log at startup (restart
	// replay); WALCovered counts re-read source records dropped because
	// the recovered log already held their batch; WALSpillPeak is the
	// most batches ever waiting on disk beyond the in-memory window
	// (>0 means spill mode happened). All zero without Config.WALDir.
	WALAppended  int64
	WALRecovered int64
	WALCovered   int64
	WALSpillPeak int64
	// Source is the decode accounting of the JSONL reader.
	Source traceio.Stats
}

// batchRec is one ring entry: a cut batch awaiting acknowledgment.
type batchRec struct {
	seq       uint64
	visits    []trace.Visit
	maxDepart simnet.Time
	sent      bool
}

type readResult struct {
	stats traceio.Stats
	err   error
}

// run is the single-goroutine state of one Run call (the source reader
// and per-session frame reader are helpers feeding channels).
type run struct {
	cfg Config
	m   Metrics

	pending     []batchRec // unacked ring, ordered by seq
	wal         *walState  // nil without Config.WALDir
	nextSeq     uint64
	ackedSeq    uint64
	ackedDepart simnet.Time // newest departure among acked batches
	srcDone     bool
	finalSeq    uint64
	saidGoodbye bool

	srcCh   chan []trace.Visit
	readRes chan readResult
}

// Run ships src to the merge head and blocks until the head confirms
// the full stream (clean completion), the context cancels, or a
// terminal error occurs. The returned Metrics are valid in every case.
func Run(ctx context.Context, src io.Reader, cfg Config) (Metrics, error) {
	if cfg.Node == "" {
		return Metrics{}, errors.New("agent: Config.Node is required")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 10 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64
	}
	if cfg.Sleep == nil {
		cfg.Sleep = sleepTimer
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	a := &run{
		cfg:     cfg,
		nextSeq: 1,
		srcCh:   make(chan []trace.Visit, 1),
		readRes: make(chan readResult, 1),
	}
	if cfg.WALDir != "" {
		ws, rec, err := openWAL(cfg)
		if err != nil {
			return Metrics{}, err
		}
		a.wal = ws
		defer ws.close()
		if rec.Records > 0 {
			// Restart replay: everything below the log's first record was
			// acknowledged before it was truncated; everything in the log
			// is durable and queued, so the source re-read only refills
			// positions the log does not cover.
			a.ackedSeq = rec.FirstSeq - 1
			ws.covered = rec.LastSeq
			a.m.WALRecovered = int64(rec.Records)
			cfg.Logf("agent %s: wal: recovered %d unacknowledged batches [%d, %d] in %d segment(s)",
				cfg.Node, rec.Records, rec.FirstSeq, rec.LastSeq, rec.Segments)
		}
		if rec.TornBytes > 0 {
			cfg.Logf("agent %s: wal: discarded %d torn bytes past the last whole record", cfg.Node, rec.TornBytes)
		}
	}
	go a.readSource(ctx, src)
	err := a.loop(ctx)
	return a.m, err
}

// readSource decodes the JSONL source into copied batches. The batch
// slice handed to the StreamVisits callback is reused, so each batch is
// copied before crossing the channel.
func (a *run) readSource(ctx context.Context, src io.Reader) {
	opts := traceio.StreamOptions{BatchSize: a.cfg.BatchSize}
	if a.cfg.Lenient {
		opts.Policy = traceio.Skip
	}
	stats, err := traceio.StreamVisitsOpts(src, opts, func(batch []trace.Visit) error {
		cp := make([]trace.Visit, len(batch))
		copy(cp, batch)
		select {
		case a.srcCh <- cp:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	close(a.srcCh)
	a.readRes <- readResult{stats: stats, err: err}
}

// loop runs sessions until clean completion or a terminal failure.
func (a *run) loop(ctx context.Context) error {
	backoff := a.cfg.BackoffBase
	fails := 0
	session := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if session > 0 || fails > 0 {
			if err := a.sleepDrain(ctx, a.jitter(backoff)); err != nil {
				var term *terminalError
				if errors.As(err, &term) {
					return term.err
				}
				return err
			}
			if backoff *= 2; backoff > a.cfg.BackoffMax {
				backoff = a.cfg.BackoffMax
			}
		}
		conn, welcome, terminal, err := a.connect(ctx)
		if terminal {
			if a.delivered() {
				// Every batch through finalSeq is acked and durable; the
				// only frame left was the EOF notice (our Goodbye echo was
				// lost with the previous connection). A head that rejects
				// the reconnect now is draining or completing — it has no
				// more need of the notice, so this run is complete, not
				// failed.
				a.cfg.Logf("agent %s: head rejected reconnect after full delivery (%v); exiting clean", a.cfg.Node, err)
				return nil
			}
			return err
		}
		if err != nil {
			fails++
			if a.cfg.MaxDials > 0 && fails >= a.cfg.MaxDials {
				return fmt.Errorf("agent: giving up after %d consecutive failed connection attempts: %w", fails, err)
			}
			a.cfg.Logf("agent %s: connect: %v (attempt %d)", a.cfg.Node, err, fails)
			continue
		}
		fails = 0
		backoff = a.cfg.BackoffBase
		session++
		if session > 1 {
			a.m.Reconnects++
		}
		a.fastForward(welcome.LastAcked)
		// A Goodbye whose echo was lost with the old connection must be
		// re-sent on this one (the head's EOF handling is idempotent).
		a.saidGoodbye = false
		done, err := a.session(ctx, conn)
		if done {
			return nil
		}
		if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
			return err
		}
		var term *terminalError
		if errors.As(err, &term) {
			return term.err
		}
		a.cfg.Logf("agent %s: session ended: %v (reconnecting)", a.cfg.Node, err)
	}
}

// delivered reports whether every source record is durably applied at
// the head: the source is exhausted and no batch awaits an ack — in
// the ring or spilled on disk. Once true, the only frame left to send
// is the EOF notice (Goodbye).
func (a *run) delivered() bool {
	return a.srcDone && len(a.pending) == 0 && !a.hasBacklog()
}

// hasBacklog reports batches durable on disk but not yet in the ring:
// spill mode's leftover, drained by refill as acknowledgments free
// window slots.
func (a *run) hasBacklog() bool {
	return a.wal != nil && a.wal.next <= a.wal.log.LastSeq()
}

// terminalError marks failures no reconnect can fix (source read
// failure, handshake rejection).
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }

// sleepTimer is the default Config.Sleep.
func sleepTimer(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sleepDrain waits out a backoff like Config.Sleep, but with a WAL
// configured it keeps cutting source batches to disk while
// disconnected — spill mode is what keeps ingest running through a
// head outage. Without a WAL the ring is the only buffer, so the
// source is left alone until a session restores acknowledgment flow.
func (a *run) sleepDrain(ctx context.Context, d time.Duration) error {
	if a.wal == nil || a.srcDone {
		return a.cfg.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	for {
		src := a.srcCh
		if a.srcDone {
			src = nil
		}
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case visits, ok := <-src:
			if !ok {
				if err := a.sourceExhausted(); err != nil {
					return err
				}
				continue
			}
			if _, err := a.intake(visits); err != nil {
				return err
			}
		}
	}
}

// jitter spreads d over [0.5d, 1.5d) so agents reconnecting after the
// same head failure do not stampede it in lockstep, clamped at
// BackoffMax so jitter can never grow the configured ceiling.
func (a *run) jitter(d time.Duration) time.Duration {
	j := time.Duration(float64(d) * (0.5 + a.cfg.Rand()))
	if j > a.cfg.BackoffMax {
		j = a.cfg.BackoffMax
	}
	return j
}

// connect dials and handshakes once. terminal=true means the error is
// not retryable (version rejection, protocol confusion).
func (a *run) connect(ctx context.Context) (net.Conn, wire.Welcome, bool, error) {
	conn, err := a.cfg.Dial(a.cfg.Addr)
	if err != nil {
		return nil, wire.Welcome{}, false, err
	}
	conn.SetDeadline(time.Now().Add(a.cfg.IOTimeout))
	// FirstSeq: the lowest batch this agent can still transmit — the
	// ring's head, the on-disk backlog's head after a restart replay, or
	// the next sequence to be produced when nothing is pending. It lets
	// the head reject (rather than silently skip past) a first batch
	// that lost its predecessors in transit.
	first := a.nextSeq
	if a.wal != nil && a.wal.covered+1 > first {
		first = a.wal.covered + 1
	}
	if a.ackedSeq+1 > first {
		first = a.ackedSeq + 1
	}
	if a.hasBacklog() && a.wal.next < first {
		first = a.wal.next
	}
	if len(a.pending) > 0 {
		first = a.pending[0].seq
	}
	nonce, err := wire.NewNonce()
	if err != nil {
		conn.Close()
		return nil, wire.Welcome{}, true, fmt.Errorf("agent: handshake nonce: %w", err)
	}
	w := wire.NewWriter(conn)
	err = w.WriteHello(wire.Hello{Version: wire.Version, Node: a.cfg.Node, FirstSeq: first, Nonce: nonce})
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		conn.Close()
		return nil, wire.Welcome{}, false, err
	}
	r := wire.NewReader(conn)
	f, err := r.Read()
	if err != nil {
		conn.Close()
		return nil, wire.Welcome{}, false, fmt.Errorf("agent: handshake read: %w", err)
	}
	authed := false
	if f.Type == wire.TypeChallenge {
		if len(a.cfg.AuthKey) == 0 {
			conn.Close()
			return nil, wire.Welcome{}, true, errors.New("agent: merge head requires authentication and this agent has no shared key (set -authkey)")
		}
		// Answer first, then verify the head's proof: the head can count
		// a bad key either way, and our verdict on its proof does not
		// depend on the order (both proofs bind both nonces).
		err = w.WriteAuth(wire.Auth{MAC: wire.AgentProof(a.cfg.AuthKey, a.cfg.Node, nonce, f.Challenge.Nonce)})
		if err == nil {
			err = w.Flush()
		}
		if err != nil {
			conn.Close()
			return nil, wire.Welcome{}, false, err
		}
		if !wire.ProofEqual(f.Challenge.Proof, wire.HeadProof(a.cfg.AuthKey, nonce, f.Challenge.Nonce)) {
			conn.Close()
			return nil, wire.Welcome{}, true, errors.New("agent: merge head failed mutual authentication (shared key mismatch)")
		}
		authed = true
		if f, err = r.Read(); err != nil {
			conn.Close()
			return nil, wire.Welcome{}, false, fmt.Errorf("agent: handshake read: %w", err)
		}
	}
	switch f.Type {
	case wire.TypeError:
		conn.Close()
		return nil, wire.Welcome{}, true, fmt.Errorf("agent: rejected by merge head: %s", f.Error.Msg)
	case wire.TypeWelcome:
		if len(a.cfg.AuthKey) > 0 && !authed {
			// Downgrade refusal: a keyless (or impostor) head welcoming us
			// without a challenge never proved it holds the key.
			conn.Close()
			return nil, wire.Welcome{}, true, errors.New("agent: merge head did not authenticate (no shared key on the head?); refusing unauthenticated session")
		}
		if f.Welcome.Version != wire.Version {
			conn.Close()
			return nil, wire.Welcome{}, true, fmt.Errorf("agent: merge head speaks protocol version %d, this build speaks %d", f.Welcome.Version, wire.Version)
		}
	default:
		conn.Close()
		return nil, wire.Welcome{}, true, fmt.Errorf("agent: unexpected handshake frame type %d", f.Type)
	}
	conn.SetDeadline(time.Time{})
	return conn, f.Welcome, false, nil
}

// fastForward applies the head's resume cursor: ring entries at or
// below lastAcked were durably applied by a previous session and are
// discarded. A cursor *behind* our own acknowledgment state means the
// head restarted cold and its memory of those batches is gone — the
// records are lost to the analysis (the head accepts the ring's first
// batch at any sequence), which is logged, never silent.
func (a *run) fastForward(lastAcked uint64) {
	if lastAcked > a.ackedSeq {
		a.ackedSeq = lastAcked
		a.popAcked(lastAcked)
		if a.wal != nil {
			if lastAcked+1 > a.wal.next {
				a.wal.skipTo(lastAcked + 1)
			}
			a.truncateWAL()
		}
	} else if lastAcked < a.ackedSeq {
		a.cfg.Logf("agent %s: merge head resume cursor %d behind ours %d (head restarted cold; acknowledged batches between are lost)",
			a.cfg.Node, lastAcked, a.ackedSeq)
	}
}

// popAcked discards ring entries with seq ≤ s and advances the
// acknowledged-departure horizon.
func (a *run) popAcked(s uint64) {
	cut := 0
	for cut < len(a.pending) && a.pending[cut].seq <= s {
		if a.pending[cut].maxDepart > a.ackedDepart {
			a.ackedDepart = a.pending[cut].maxDepart
		}
		a.m.BatchesAcked++
		cut++
	}
	if cut > 0 {
		a.pending = a.pending[:copy(a.pending, a.pending[cut:])]
	}
}

// sourceExhausted finalizes the source reader's accounting. Called once
// when srcCh closes — from the session loop, or from sleepDrain when
// spill mode keeps consuming the source between sessions.
func (a *run) sourceExhausted() error {
	res := <-a.readRes
	a.m.Source = res.stats
	a.srcDone = true
	a.finalSeq = a.nextSeq - 1
	if a.cfg.OnSourceDrained != nil {
		a.cfg.OnSourceDrained()
	}
	if res.err != nil {
		return &terminalError{fmt.Errorf("agent: source read: %w", res.err)}
	}
	return nil
}

// intake admits one cut source batch: assign its positional sequence,
// drop it if a recovered log or the head's resume cursor already covers
// it, make it durable, and either hand it to the ring (returned non-nil,
// for the caller to transmit) or leave it spilled on disk when the
// window is full or older spill is still queued — delivery is FIFO, a
// fresh batch may not jump the backlog.
func (a *run) intake(visits []trace.Visit) (*batchRec, error) {
	seq := a.nextSeq
	a.nextSeq++
	a.m.RecordsRead += int64(len(visits))
	if a.wal != nil && seq <= a.wal.covered {
		// Restart replay: the recovered log already holds this batch
		// byte-for-byte (sequences are positional), so the re-read copy
		// is redundant.
		a.m.WALCovered += int64(len(visits))
		return nil, nil
	}
	if seq <= a.ackedSeq {
		// The head already applied this batch in a previous incarnation
		// of this agent.
		a.m.ResumeSkipped += int64(len(visits))
		return nil, nil
	}
	spill := a.wal != nil && (a.hasBacklog() || len(a.pending) >= a.cfg.Window)
	if a.wal != nil {
		if err := a.wal.append(seq, visits); err != nil {
			return nil, &terminalError{fmt.Errorf("agent: %w", err)}
		}
		a.m.WALAppended++
	}
	if spill {
		if backlog := int64(a.wal.log.LastSeq() - a.wal.next + 1); backlog > a.m.WALSpillPeak {
			a.m.WALSpillPeak = backlog
		}
		return nil, nil
	}
	if a.wal != nil {
		a.wal.advanceOver(seq)
	}
	var md simnet.Time
	for i := range visits {
		if visits[i].Depart > md {
			md = visits[i].Depart
		}
	}
	a.pending = append(a.pending, batchRec{seq: seq, visits: visits, maxDepart: md})
	return &a.pending[len(a.pending)-1], nil
}

// refill drains the on-disk backlog into freed window slots and (when a
// session is live) transmits the reloaded batches in order. Called at
// session start, after the ring retransmit, and after every
// acknowledgment.
func (a *run) refill(w *wire.Writer, flush func() error) error {
	if a.wal == nil {
		return nil
	}
	wrote := false
	for len(a.pending) < a.cfg.Window && a.hasBacklog() {
		seq, visits, err := a.wal.readNext()
		if err != nil {
			return &terminalError{fmt.Errorf("agent: %w", err)}
		}
		if seq <= a.ackedSeq {
			// Acknowledged while it sat on disk (reconnect fast-forward).
			continue
		}
		var md simnet.Time
		for i := range visits {
			if visits[i].Depart > md {
				md = visits[i].Depart
			}
		}
		rec := batchRec{seq: seq, visits: visits, maxDepart: md}
		if w != nil {
			if err := w.WriteBatch(wire.Batch{Seq: seq, Visits: visits}); err != nil {
				return err
			}
			rec.sent = true
			a.m.BatchesSent++
			a.m.RecordsSent += int64(len(visits))
			wrote = true
		}
		a.pending = append(a.pending, rec)
	}
	if wrote {
		return flush()
	}
	return nil
}

// truncateWAL drops log segments wholly at or below the acknowledgment
// cursor. Failure here loses nothing — the log is merely longer than it
// needs to be — so it is logged, never fatal.
func (a *run) truncateWAL() {
	if a.wal == nil {
		return
	}
	if _, err := a.wal.log.TruncateThrough(a.ackedSeq); err != nil {
		a.cfg.Logf("agent %s: wal truncate: %v", a.cfg.Node, err)
	}
}

type inFrame struct {
	f   wire.Frame
	err error
}

// session runs one connection to completion: retransmit the ring, then
// stream new batches, heartbeats and acknowledgments until the head
// echoes our Goodbye (done), the connection fails (reconnect), or the
// context cancels. Single writer: only this goroutine touches w.
func (a *run) session(ctx context.Context, conn net.Conn) (bool, error) {
	defer conn.Close()
	w := wire.NewWriter(conn)
	idle := a.cfg.IOTimeout
	if hb3 := 3 * a.cfg.HeartbeatEvery; hb3 > idle {
		idle = hb3
	}

	stop := make(chan struct{})
	defer close(stop)
	inCh := make(chan inFrame, 8)
	go func() {
		r := wire.NewReader(conn)
		for {
			conn.SetReadDeadline(time.Now().Add(idle))
			f, err := r.Read()
			select {
			case inCh <- inFrame{f, err}:
			case <-stop:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	flush := func() error {
		conn.SetWriteDeadline(time.Now().Add(a.cfg.IOTimeout))
		return w.Flush()
	}

	// Retransmit the unacknowledged ring in order before anything new.
	for i := range a.pending {
		rec := &a.pending[i]
		if err := w.WriteBatch(wire.Batch{Seq: rec.seq, Visits: rec.visits}); err != nil {
			return false, err
		}
		a.m.BatchesSent++
		if rec.sent {
			a.m.Retransmits++
		} else {
			rec.sent = true
			a.m.RecordsSent += int64(len(rec.visits))
		}
	}
	if len(a.pending) > 0 {
		if err := flush(); err != nil {
			return false, err
		}
	}
	// Spill drain: batches that waited on disk follow the retransmits.
	if err := a.refill(w, flush); err != nil {
		return false, err
	}
	if err := a.maybeGoodbye(w, flush); err != nil {
		return false, err
	}

	hb := time.NewTicker(a.cfg.HeartbeatEvery)
	defer hb.Stop()
	for {
		// Without a WAL a full window stalls the source read
		// (backpressure); with one, intake keeps cutting to disk.
		srcIn := a.srcCh
		if a.srcDone || (a.wal == nil && len(a.pending) >= a.cfg.Window) {
			srcIn = nil
		}
		select {
		case <-ctx.Done():
			return false, ctx.Err()

		case visits, ok := <-srcIn:
			if !ok {
				if err := a.sourceExhausted(); err != nil {
					return false, err
				}
				if err := a.maybeGoodbye(w, flush); err != nil {
					return false, err
				}
				continue
			}
			rec, err := a.intake(visits)
			if err != nil {
				return false, err
			}
			if rec == nil {
				continue // covered, already acked, or spilled to disk
			}
			if err := w.WriteBatch(wire.Batch{Seq: rec.seq, Visits: rec.visits}); err != nil {
				return false, err
			}
			if err := flush(); err != nil {
				return false, err
			}
			rec.sent = true
			a.m.BatchesSent++
			a.m.RecordsSent += int64(len(rec.visits))

		case in := <-inCh:
			if in.err != nil {
				return false, in.err
			}
			switch in.f.Type {
			case wire.TypeAck:
				if s := in.f.Ack.Seq; s > a.ackedSeq {
					a.ackedSeq = s
					a.popAcked(s)
					a.truncateWAL()
					if err := a.refill(w, flush); err != nil {
						return false, err
					}
				}
				if err := a.maybeGoodbye(w, flush); err != nil {
					return false, err
				}
			case wire.TypeGoodbye:
				// The head confirmed our Goodbye: every batch through
				// FinalSeq is applied. Clean completion.
				return true, nil
			case wire.TypeError:
				return false, fmt.Errorf("agent: merge head error: %s", in.f.Error.Msg)
			default:
				return false, fmt.Errorf("agent: unexpected frame type %d mid-session", in.f.Type)
			}

		case <-hb.C:
			h := wire.Heartbeat{MaxDepart: a.ackedDepart}
			if a.wal != nil {
				if last := a.wal.log.LastSeq(); last > a.ackedSeq {
					h.WALDepth = last - a.ackedSeq
				}
				h.WALSegments = uint64(a.wal.log.Segments())
				h.Spilling = a.hasBacklog()
			}
			if err := w.WriteHeartbeat(h); err != nil {
				return false, err
			}
			if err := flush(); err != nil {
				return false, err
			}
		}
	}
}

// maybeGoodbye sends the end-of-stream frame once the source is
// exhausted and every batch is acknowledged. Idempotent per session;
// safe to re-send on a later session (the head's EOF is idempotent
// too).
func (a *run) maybeGoodbye(w *wire.Writer, flush func() error) error {
	if !a.srcDone || len(a.pending) > 0 || a.hasBacklog() || a.saidGoodbye {
		return nil
	}
	if err := w.WriteGoodbye(wire.Goodbye{FinalSeq: a.finalSeq, Reason: "eof"}); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	a.saidGoodbye = true
	return nil
}
