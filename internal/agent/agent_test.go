package agent

import (
	"bytes"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"transientbd/internal/chaos"
	"transientbd/internal/trace"
	"transientbd/internal/traceio"
	"transientbd/internal/wire"
)

// testFeed renders a deterministic workload as the JSONL agents read.
func testFeed(t *testing.T, n int) ([]trace.Visit, []byte) {
	t.Helper()
	vs := chaos.Workload([]string{"a", "b"}, n, 9)
	var buf bytes.Buffer
	if err := traceio.WriteVisits(&buf, vs); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return vs, buf.Bytes()
}

// testCfg is an agent tuned for fast tests against addr.
func testCfg(addr string) Config {
	return Config{
		Node:           "n1",
		Addr:           addr,
		BatchSize:      10,
		Window:         4,
		HeartbeatEvery: 20 * time.Millisecond,
		IOTimeout:      300 * time.Millisecond,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
	}
}

// scriptedServer accepts connections and hands each to handle on its
// own goroutine. Close stops the listener and waits.
type scriptedServer struct {
	lis  net.Listener
	wg   sync.WaitGroup
	stop chan struct{}
}

func newScriptedServer(t *testing.T, handle func(sess int, conn net.Conn)) *scriptedServer {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &scriptedServer{lis: lis, stop: make(chan struct{})}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for sess := 0; ; sess++ {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func(sess int) {
				defer s.wg.Done()
				defer conn.Close()
				handle(sess, conn)
			}(sess)
		}
	}()
	return s
}

func (s *scriptedServer) addr() string { return s.lis.Addr().String() }

func (s *scriptedServer) close() {
	s.lis.Close()
	s.wg.Wait()
}

// readHello consumes the handshake open, failing the test on anything
// else.
func readHello(t *testing.T, r *wire.Reader) wire.Hello {
	t.Helper()
	f, err := r.Read()
	if err != nil || f.Type != wire.TypeHello {
		t.Errorf("expected Hello, got type %d err %v", f.Type, err)
		return wire.Hello{}
	}
	return f.Hello
}

func TestAgentHandshakeRejectionIsTerminal(t *testing.T) {
	srv := newScriptedServer(t, func(_ int, conn net.Conn) {
		r, w := wire.NewReader(conn), wire.NewWriter(conn)
		readHello(t, r)
		w.WriteError(wire.ErrorFrame{Msg: "protocol version 99 not supported"})
		w.Flush()
	})
	defer srv.close()

	_, feed := testFeed(t, 30)
	start := time.Now()
	_, err := Run(context.Background(), bytes.NewReader(feed), testCfg(srv.addr()))
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("want terminal rejection error, got %v", err)
	}
	// Terminal means no retry loop: well under one backoff cycle.
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("rejection took %v — looks like it retried", d)
	}
}

func TestAgentGivesUpAfterMaxDials(t *testing.T) {
	// A listener that is immediately closed: every dial fails fast.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := lis.Addr().String()
	lis.Close()

	cfg := testCfg(addr)
	cfg.MaxDials = 3
	_, feed := testFeed(t, 30)
	_, err = Run(context.Background(), bytes.NewReader(feed), cfg)
	if err == nil || !strings.Contains(err.Error(), "giving up after 3") {
		t.Fatalf("want give-up error after 3 attempts, got %v", err)
	}
}

func TestAgentResumeFastForward(t *testing.T) {
	// The head claims batches 1..3 are already applied (a restarted
	// agent re-reading its source). The agent must regenerate but never
	// send them, starting at sequence 4.
	const lastAcked = 3
	var mu sync.Mutex
	var seqs []uint64
	srv := newScriptedServer(t, func(_ int, conn net.Conn) {
		r, w := wire.NewReader(conn), wire.NewWriter(conn)
		readHello(t, r)
		w.WriteWelcome(wire.Welcome{Version: wire.Version, LastAcked: lastAcked})
		w.Flush()
		for {
			f, err := r.Read()
			if err != nil {
				return
			}
			switch f.Type {
			case wire.TypeBatch:
				mu.Lock()
				seqs = append(seqs, f.Batch.Seq)
				mu.Unlock()
				w.WriteAck(wire.Ack{Seq: f.Batch.Seq})
			case wire.TypeHeartbeat:
				w.WriteAck(wire.Ack{Seq: 0})
			case wire.TypeGoodbye:
				w.WriteGoodbye(wire.Goodbye{FinalSeq: f.Goodbye.FinalSeq, Reason: "ack"})
			}
			w.Flush()
		}
	})
	defer srv.close()

	vs, feed := testFeed(t, 95) // 10 batches of 10 (last short)
	cfg := testCfg(srv.addr())
	m, err := Run(context.Background(), bytes.NewReader(feed), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) == 0 || seqs[0] != lastAcked+1 {
		t.Fatalf("first sent batch seq %v, want %d", seqs, lastAcked+1)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("non-contiguous sends: %v", seqs)
		}
	}
	if want := int64(lastAcked * cfg.BatchSize); m.ResumeSkipped != want {
		t.Errorf("ResumeSkipped = %d, want %d", m.ResumeSkipped, want)
	}
	if m.RecordsRead != int64(len(vs)) {
		t.Errorf("RecordsRead = %d, want %d (fast-forward still reads the source)", m.RecordsRead, len(vs))
	}
	if m.RecordsSent != int64(len(vs))-m.ResumeSkipped {
		t.Errorf("RecordsSent = %d, want %d", m.RecordsSent, int64(len(vs))-m.ResumeSkipped)
	}
}

func TestAgentReconnectRetransmitsUnacked(t *testing.T) {
	// Session 0: welcome, ack the first two batches, then cut the
	// connection without warning. Session 1: welcome with
	// LastAcked=2; the agent must retransmit from 3, in order, and
	// finish cleanly.
	var mu sync.Mutex
	var got []uint64 // applied batch seqs across sessions
	srv := newScriptedServer(t, func(sess int, conn net.Conn) {
		r, w := wire.NewReader(conn), wire.NewWriter(conn)
		readHello(t, r)
		w.WriteWelcome(wire.Welcome{Version: wire.Version, LastAcked: uint64(min(len(appliedLocked(&mu, &got)), 2))})
		w.Flush()
		acked := 0
		for {
			f, err := r.Read()
			if err != nil {
				return
			}
			switch f.Type {
			case wire.TypeBatch:
				mu.Lock()
				if int(f.Batch.Seq) == len(got)+1 {
					got = append(got, f.Batch.Seq)
				}
				mu.Unlock()
				w.WriteAck(wire.Ack{Seq: f.Batch.Seq})
				acked++
				if sess == 0 && acked == 2 {
					w.Flush()
					return // hard cut mid-stream
				}
			case wire.TypeHeartbeat:
				w.WriteAck(wire.Ack{Seq: 0})
			case wire.TypeGoodbye:
				w.WriteGoodbye(wire.Goodbye{FinalSeq: f.Goodbye.FinalSeq, Reason: "ack"})
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	})
	defer srv.close()

	_, feed := testFeed(t, 95)
	m, err := Run(context.Background(), bytes.NewReader(feed), testCfg(srv.addr()))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 10 {
		t.Fatalf("applied %d batches (%v), want 10", len(got), got)
	}
	if m.Reconnects != 1 {
		t.Errorf("Reconnects = %d, want 1", m.Reconnects)
	}
	if m.BatchesAcked != 10 {
		t.Errorf("BatchesAcked = %d, want 10", m.BatchesAcked)
	}
}

func TestAgentCleanExitWhenGoodbyeEchoLostAndHeadDraining(t *testing.T) {
	// Session 0: ack every batch, receive the Goodbye, then cut the
	// connection without echoing it — the head applied the EOF but the
	// confirmation died with the link. Session 1: the head has finished
	// draining and rejects the handshake terminally. Everything was
	// delivered, so the agent must exit clean (nil), not report the
	// rejection as a failure.
	var mu sync.Mutex
	var acked int64
	srv := newScriptedServer(t, func(sess int, conn net.Conn) {
		r, w := wire.NewReader(conn), wire.NewWriter(conn)
		readHello(t, r)
		if sess > 0 {
			w.WriteError(wire.ErrorFrame{Msg: "merge head is draining"})
			w.Flush()
			return
		}
		w.WriteWelcome(wire.Welcome{Version: wire.Version})
		w.Flush()
		for {
			f, err := r.Read()
			if err != nil {
				return
			}
			switch f.Type {
			case wire.TypeBatch:
				mu.Lock()
				acked++
				mu.Unlock()
				w.WriteAck(wire.Ack{Seq: f.Batch.Seq})
			case wire.TypeHeartbeat:
				w.WriteAck(wire.Ack{Seq: 0})
			case wire.TypeGoodbye:
				return // swallow the EOF notice: no echo, hard cut
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	})
	defer srv.close()

	vs, feed := testFeed(t, 95)
	m, err := Run(context.Background(), bytes.NewReader(feed), testCfg(srv.addr()))
	if err != nil {
		t.Fatalf("Run after full delivery must succeed, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if acked != 10 {
		t.Fatalf("head acked %d batches, want 10", acked)
	}
	if m.BatchesAcked != 10 {
		t.Errorf("BatchesAcked = %d, want 10", m.BatchesAcked)
	}
	if m.RecordsSent != int64(len(vs)) {
		t.Errorf("RecordsSent = %d, want %d", m.RecordsSent, len(vs))
	}
}

func appliedLocked(mu *sync.Mutex, got *[]uint64) []uint64 {
	mu.Lock()
	defer mu.Unlock()
	return *got
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
