package agent

import (
	"fmt"
	"io"

	"transientbd/internal/trace"
	"transientbd/internal/wal"
	"transientbd/internal/wire"
)

// walState wires a wal.Log into the agent's delivery state machine.
// With a WAL configured the log — not the in-memory ring — is the
// source of truth for unacknowledged batches: every cut batch is
// appended before it is offered to the network, the ring becomes a
// bounded cache of the next Window unacknowledged batches, and
// anything beyond the window waits on disk (spill mode) instead of
// stalling the source read. Acknowledgments truncate whole segments;
// a restart reopens the log and replays it from the head's resume
// cursor.
type walState struct {
	log *wal.Log
	// next is the sequence the refill cursor will yield next: batches
	// in [next, log.LastSeq()] are durable on disk but not in the ring
	// — the spill backlog. Batches below next are in the ring or
	// acknowledged.
	next uint64
	// covered is the highest sequence recovered from a previous run's
	// log. Source batches at or below it are already durable and
	// queued, so intake drops the re-read copies — safe because
	// sequence numbers are positional, making the recovered bytes
	// identical to the re-cut ones.
	covered uint64
	cur     *wal.Cursor
	enc     []byte // reused batch-body encode scratch
}

// openWAL opens (or recovers) the agent's log and positions the refill
// state after whatever survived on disk.
func openWAL(cfg Config) (*walState, wal.Recovery, error) {
	log, rec, err := wal.Open(wal.Options{
		Dir:          cfg.WALDir,
		SegmentBytes: cfg.WALSegmentBytes,
		NoSync:       cfg.WALNoSync,
	})
	if err != nil {
		return nil, wal.Recovery{}, fmt.Errorf("agent: %w", err)
	}
	ws := &walState{log: log, next: log.LastSeq() + 1}
	if rec.Records > 0 {
		ws.next = rec.FirstSeq
	}
	return ws, rec, nil
}

// append makes one cut batch durable.
func (ws *walState) append(seq uint64, visits []trace.Visit) error {
	ws.enc = wire.AppendVisits(ws.enc[:0], visits)
	return ws.log.Append(seq, ws.enc)
}

// readNext decodes the next backlog batch. The caller checks the
// backlog is non-empty first, so io.EOF here means the log lied —
// surfaced as an error.
func (ws *walState) readNext() (uint64, []trace.Visit, error) {
	if ws.cur == nil {
		cur, err := ws.log.ReadCursor(ws.next)
		if err != nil {
			return 0, nil, err
		}
		ws.cur = cur
	}
	seq, body, err := ws.cur.Next()
	if err == io.EOF {
		return 0, nil, fmt.Errorf("wal: backlog cursor hit end at %d", ws.next)
	}
	if err != nil {
		return 0, nil, err
	}
	visits, err := wire.DecodeVisits(body)
	if err != nil {
		return 0, nil, err
	}
	ws.next = seq + 1
	return seq, visits, nil
}

// advanceOver records that seq entered the ring directly (no spill):
// the refill position moves past it without a disk read.
func (ws *walState) advanceOver(seq uint64) {
	ws.next = seq + 1
	ws.invalidate()
}

// skipTo repositions the refill cursor (reconnect fast-forward past
// batches acknowledged while they sat on disk).
func (ws *walState) skipTo(seq uint64) {
	ws.next = seq
	ws.invalidate()
}

func (ws *walState) invalidate() {
	if ws.cur != nil {
		ws.cur.Close()
		ws.cur = nil
	}
}

func (ws *walState) close() {
	ws.invalidate()
	ws.log.Close()
}
