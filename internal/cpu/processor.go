package cpu

import (
	"errors"
	"fmt"

	"transientbd/internal/simnet"
)

// Job is a unit of CPU work submitted to a Processor. Work is expressed as
// the service time the job would take on one core at the *nominal* (P0)
// frequency; a lower P-state stretches it proportionally.
type Job struct {
	// remaining nominal-frequency work, in virtual microseconds (float to
	// avoid rounding drift across many speed changes).
	remaining float64
	onDone    func()
	running   bool
	lastSync  simnet.Time
	doneEv    simnet.EventHandle
}

// Config configures a Processor.
type Config struct {
	// Cores is the number of parallel execution slots (VM vCPUs pinned to
	// physical cores in the paper's setup, Fig 1).
	Cores int
	// PStates is the frequency table, fastest first. Defaults to TableII.
	PStates []PState
	// Governor selects the P-state each control period. Defaults to
	// FixedGovernor{State: 0} (SpeedStep disabled).
	Governor Governor
	// ControlPeriod is how often the governor runs. The paper's BIOS
	// control is slow; 500ms reproduces its sluggishness. Defaults to
	// 500ms. Ignored for FixedGovernor (no ticks are scheduled).
	ControlPeriod simnet.Duration
	// InitialState is the starting P-state index. Defaults to the slowest
	// state when a non-fixed governor is set (power-saving idle start),
	// otherwise to the fixed state.
	InitialState int
}

// Processor executes CPU jobs on a fixed number of cores with
// frequency-scaled progress and stop-the-world pause support.
type Processor struct {
	engine *simnet.Engine
	cfg    Config

	current int // P-state index
	paused  bool

	running []*Job
	queue   []*Job

	// Busy-time accounting (for utilization: governor + monitors).
	busyIntegral   float64 // core-microseconds of occupied cores
	lastBusySync   simnet.Time
	windowStart    simnet.Time
	windowIntegral float64

	// P-state residency accounting (core-µs per state), for reports.
	stateResidency []float64
	lastStateSync  simnet.Time

	transitions uint64
	onSpeed     []func(state int)
}

// NewProcessor creates a processor bound to the engine. The governor tick
// is scheduled lazily on Start.
func NewProcessor(engine *simnet.Engine, cfg Config) (*Processor, error) {
	if engine == nil {
		return nil, errors.New("cpu: nil engine")
	}
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("cpu: cores must be positive, got %d", cfg.Cores)
	}
	if len(cfg.PStates) == 0 {
		cfg.PStates = TableII()
	}
	for i := 1; i < len(cfg.PStates); i++ {
		if cfg.PStates[i].MHz >= cfg.PStates[i-1].MHz {
			return nil, fmt.Errorf("cpu: P-states must be ordered fastest first (index %d)", i)
		}
	}
	if cfg.Governor == nil {
		cfg.Governor = FixedGovernor{State: 0}
	}
	if cfg.ControlPeriod <= 0 {
		cfg.ControlPeriod = 500 * simnet.Millisecond
	}
	initial := cfg.InitialState
	if fixed, ok := cfg.Governor.(FixedGovernor); ok {
		initial = fixed.State
	}
	initial = clampState(initial, len(cfg.PStates))
	p := &Processor{
		engine:         engine,
		cfg:            cfg,
		current:        initial,
		stateResidency: make([]float64, len(cfg.PStates)),
	}
	return p, nil
}

// Start begins governor ticks. Safe to skip for fixed governors.
func (p *Processor) Start() {
	if _, fixed := p.cfg.Governor.(FixedGovernor); fixed {
		return
	}
	p.windowStart = p.engine.Now()
	p.windowIntegral = 0
	p.engine.Schedule(p.cfg.ControlPeriod, p.governorTick)
}

func (p *Processor) governorTick() {
	p.syncBusy()
	now := p.engine.Now()
	window := float64(now - p.windowStart)
	util := 0.0
	if window > 0 {
		util = p.windowIntegral / (window * float64(p.cfg.Cores))
	}
	want := p.cfg.Governor.Decide(util, p.current, len(p.cfg.PStates))
	want = clampState(want, len(p.cfg.PStates))
	if want != p.current {
		p.setState(want)
	}
	p.windowStart = now
	p.windowIntegral = 0
	p.engine.Schedule(p.cfg.ControlPeriod, p.governorTick)
}

// setState changes the P-state, rescheduling all running jobs.
func (p *Processor) setState(state int) {
	p.syncProgress()
	p.syncResidency()
	p.current = state
	p.transitions++
	p.rescheduleAll()
	for _, fn := range p.onSpeed {
		fn(state)
	}
}

// ForceState pins the processor to a state immediately (used by tests and
// by scenario scripts). The governor may move it again on its next tick.
func (p *Processor) ForceState(state int) {
	p.setState(clampState(state, len(p.cfg.PStates)))
}

// OnStateChange registers a callback invoked after every P-state change.
func (p *Processor) OnStateChange(fn func(state int)) {
	p.onSpeed = append(p.onSpeed, fn)
}

// State returns the current P-state index.
func (p *Processor) State() int { return p.current }

// PStates returns a copy of the frequency table.
func (p *Processor) PStates() []PState {
	out := make([]PState, len(p.cfg.PStates))
	copy(out, p.cfg.PStates)
	return out
}

// Cores returns the number of cores.
func (p *Processor) Cores() int { return p.cfg.Cores }

// Transitions returns how many P-state changes have occurred.
func (p *Processor) Transitions() uint64 { return p.transitions }

// speed returns the current progress rate: frequency ratio relative to
// P0, or 0 while paused.
func (p *Processor) speed() float64 {
	if p.paused {
		return 0
	}
	return float64(p.cfg.PStates[p.current].MHz) / float64(p.cfg.PStates[0].MHz)
}

// SpeedRatio exposes the current non-paused frequency ratio (1.0 at P0).
func (p *Processor) SpeedRatio() float64 {
	return float64(p.cfg.PStates[p.current].MHz) / float64(p.cfg.PStates[0].MHz)
}

// Paused reports whether the processor is in a stop-the-world pause.
func (p *Processor) Paused() bool { return p.paused }

// Pause freezes all job progress (stop-the-world). Cores still count as
// busy for utilization purposes: a JVM in a serial GC spins the CPU doing
// collection work while the application is frozen.
func (p *Processor) Pause() {
	if p.paused {
		return
	}
	p.syncProgress()
	p.syncBusy()
	p.paused = true
	p.rescheduleAll()
}

// Resume ends a stop-the-world pause.
func (p *Processor) Resume() {
	if !p.paused {
		return
	}
	p.syncBusy()
	p.paused = false
	// Jobs made no progress during the pause; lastSync must move to now so
	// the pause span is not charged as progress.
	now := p.engine.Now()
	for _, j := range p.running {
		j.lastSync = now
	}
	p.rescheduleAll()
}

// Submit enqueues nominal-frequency work and calls onDone when it
// completes. It returns the job handle (usable with Cancel).
func (p *Processor) Submit(work simnet.Duration, onDone func()) *Job {
	if work < 0 {
		work = 0
	}
	j := &Job{remaining: float64(work), onDone: onDone}
	if len(p.running) < p.cfg.Cores {
		p.startJob(j)
	} else {
		p.queue = append(p.queue, j)
	}
	return j
}

// QueueLen returns the number of jobs waiting for a core.
func (p *Processor) QueueLen() int { return len(p.queue) }

// RunningLen returns the number of jobs currently occupying cores.
func (p *Processor) RunningLen() int { return len(p.running) }

func (p *Processor) startJob(j *Job) {
	p.syncBusy()
	j.running = true
	j.lastSync = p.engine.Now()
	p.running = append(p.running, j)
	p.scheduleCompletion(j)
}

func (p *Processor) scheduleCompletion(j *Job) {
	if j.doneEv.Valid() {
		p.engine.Cancel(j.doneEv)
	}
	sp := p.speed()
	if sp <= 0 {
		return // frozen; rescheduled on resume
	}
	delay := simnet.Duration(j.remaining / sp)
	if float64(delay)*sp < j.remaining {
		delay++ // round up so remaining reaches zero
	}
	j.doneEv = p.engine.Schedule(delay, func() { p.complete(j) })
}

func (p *Processor) complete(j *Job) {
	p.syncProgress()
	p.syncBusy()
	j.remaining = 0
	j.running = false
	// Remove from running set.
	for i, r := range p.running {
		if r == j {
			p.running = append(p.running[:i], p.running[i+1:]...)
			break
		}
	}
	// Admit next queued job before invoking the callback so FIFO order is
	// independent of what the callback submits.
	if len(p.queue) > 0 {
		next := p.queue[0]
		p.queue = p.queue[1:]
		p.startJob(next)
	}
	if j.onDone != nil {
		j.onDone()
	}
}

// Cancel aborts a job; the onDone callback is never invoked. It reports
// whether the job was still pending.
func (p *Processor) Cancel(j *Job) bool {
	if j == nil {
		return false
	}
	if j.running {
		p.syncProgress()
		p.syncBusy()
		if j.doneEv.Valid() {
			p.engine.Cancel(j.doneEv)
		}
		j.running = false
		for i, r := range p.running {
			if r == j {
				p.running = append(p.running[:i], p.running[i+1:]...)
				break
			}
		}
		if len(p.queue) > 0 {
			next := p.queue[0]
			p.queue = p.queue[1:]
			p.startJob(next)
		}
		return true
	}
	for i, q := range p.queue {
		if q == j {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			return true
		}
	}
	return false
}

// syncProgress charges elapsed progress to all running jobs.
func (p *Processor) syncProgress() {
	now := p.engine.Now()
	sp := p.speed()
	for _, j := range p.running {
		if sp > 0 {
			j.remaining -= float64(now-j.lastSync) * sp
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
		j.lastSync = now
	}
}

func (p *Processor) rescheduleAll() {
	for _, j := range p.running {
		p.scheduleCompletion(j)
	}
}

// syncBusy accumulates busy core-time up to now. During a pause all cores
// count as busy (the CPU is doing GC work).
func (p *Processor) syncBusy() {
	now := p.engine.Now()
	span := float64(now - p.lastBusySync)
	if span > 0 {
		busy := float64(len(p.running))
		if p.paused {
			busy = float64(p.cfg.Cores)
		}
		if busy > float64(p.cfg.Cores) {
			busy = float64(p.cfg.Cores)
		}
		p.busyIntegral += busy * span
		p.windowIntegral += busy * span
	}
	p.lastBusySync = now
	p.syncResidency()
}

func (p *Processor) syncResidency() {
	now := p.engine.Now()
	span := float64(now - p.lastStateSync)
	if span > 0 {
		p.stateResidency[p.current] += span
	}
	p.lastStateSync = now
}

// BusyCoreMicros returns cumulative busy core-microseconds up to the
// current engine time. Monitors difference successive readings to compute
// utilization over their sampling interval.
func (p *Processor) BusyCoreMicros() float64 {
	p.syncBusy()
	return p.busyIntegral
}

// Utilization returns average utilization (0..1) over [from, now] given a
// previous BusyCoreMicros reading taken at from.
func (p *Processor) Utilization(prevBusy float64, from simnet.Time) float64 {
	now := p.engine.Now()
	span := float64(now - from)
	if span <= 0 {
		return 0
	}
	return (p.BusyCoreMicros() - prevBusy) / (span * float64(p.cfg.Cores))
}

// StateResidency returns the fraction of elapsed time spent in each
// P-state since creation.
func (p *Processor) StateResidency() []float64 {
	p.syncResidency()
	var total float64
	for _, r := range p.stateResidency {
		total += r
	}
	out := make([]float64, len(p.stateResidency))
	if total == 0 {
		return out
	}
	for i, r := range p.stateResidency {
		out[i] = r / total
	}
	return out
}
