package cpu

// Energy accounting. SpeedStep exists to save power; any judgment of a
// frequency-control policy needs the other side of the ledger. The model
// is the standard CMOS approximation: dynamic power scales with f·V² and
// voltage scales roughly linearly with frequency in the DVFS range, so
// dynamic power ∝ f³, plus a frequency-independent static floor.
//
//	P(state) = StaticWatts + DynamicWatts × (f/f0)³        (per busy core)
//	P_idle(state) = StaticWatts                            (per idle core)
//
// Energy integrates P over residency, using the processor's busy-core
// accounting.

// PowerModel parameterizes per-core power draw.
type PowerModel struct {
	// StaticWatts is the frequency-independent draw per core (leakage,
	// uncore share). Default 4 W.
	StaticWatts float64
	// DynamicWatts is the additional draw of a fully busy core at the
	// highest P-state. Default 12 W.
	DynamicWatts float64
}

func (m PowerModel) applyDefaults() PowerModel {
	if m.StaticWatts <= 0 {
		m.StaticWatts = 4
	}
	if m.DynamicWatts <= 0 {
		m.DynamicWatts = 12
	}
	return m
}

// BusyWatts returns per-core power when busy at the given frequency ratio
// (f/f0 ∈ (0,1]).
func (m PowerModel) BusyWatts(freqRatio float64) float64 {
	m = m.applyDefaults()
	return m.StaticWatts + m.DynamicWatts*freqRatio*freqRatio*freqRatio
}

// EnergyJoules estimates the processor's total energy over its lifetime
// so far: static draw on all cores for the whole elapsed time plus
// dynamic draw on busy cores weighted by the per-state residency.
//
// The approximation charges busy time at the residency-weighted mean
// frequency; exact joint (busy × state) accounting would require sampling
// both simultaneously, which the processor does not track.
func (p *Processor) EnergyJoules(m PowerModel) float64 {
	m = m.applyDefaults()
	residency := p.StateResidency()
	elapsed := p.engine.Now().Seconds()
	if elapsed <= 0 {
		return 0
	}
	// Residency-weighted mean of (f/f0)³.
	var f3 float64
	for i, frac := range residency {
		ratio := float64(p.cfg.PStates[i].MHz) / float64(p.cfg.PStates[0].MHz)
		f3 += frac * ratio * ratio * ratio
	}
	busyCoreSeconds := p.BusyCoreMicros() / 1e6
	static := m.StaticWatts * float64(p.cfg.Cores) * elapsed
	dynamic := m.DynamicWatts * f3 * busyCoreSeconds
	return static + dynamic
}
