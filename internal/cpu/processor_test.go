package cpu

import (
	"math"
	"testing"

	"transientbd/internal/simnet"
)

func newTestProcessor(t *testing.T, e *simnet.Engine, cfg Config) *Processor {
	t.Helper()
	p, err := NewProcessor(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTableII(t *testing.T) {
	ps := TableII()
	if len(ps) != 5 {
		t.Fatalf("TableII has %d states, want 5", len(ps))
	}
	want := map[string]int{"P0": 2261, "P1": 2128, "P4": 1729, "P5": 1596, "P8": 1197}
	for _, s := range ps {
		if want[s.Name] != s.MHz {
			t.Errorf("%s = %d MHz, want %d", s.Name, s.MHz, want[s.Name])
		}
	}
	// P8 is roughly half of P0, as the paper notes.
	ratio := float64(ps[4].MHz) / float64(ps[0].MHz)
	if ratio < 0.5 || ratio > 0.56 {
		t.Errorf("P8/P0 ratio = %.3f, want ~0.53 (\"nearly half\")", ratio)
	}
}

func TestNewProcessorValidation(t *testing.T) {
	e := simnet.NewEngine()
	if _, err := NewProcessor(nil, Config{Cores: 1}); err == nil {
		t.Error("want error for nil engine")
	}
	if _, err := NewProcessor(e, Config{Cores: 0}); err == nil {
		t.Error("want error for zero cores")
	}
	if _, err := NewProcessor(e, Config{Cores: 1, PStates: []PState{{"A", 100}, {"B", 200}}}); err == nil {
		t.Error("want error for unordered P-states")
	}
}

func TestSingleJobCompletes(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 1})
	var doneAt simnet.Time = -1
	p.Submit(10*simnet.Millisecond, func() { doneAt = e.Now() })
	if err := e.Run(simnet.Second); err != nil {
		t.Fatal(err)
	}
	if doneAt != 10*simnet.Millisecond {
		t.Errorf("job finished at %v, want 10ms", doneAt)
	}
}

func TestJobsQueueBeyondCores(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 2})
	var finished []simnet.Time
	for i := 0; i < 4; i++ {
		p.Submit(10*simnet.Millisecond, func() { finished = append(finished, e.Now()) })
	}
	if p.RunningLen() != 2 || p.QueueLen() != 2 {
		t.Fatalf("running=%d queue=%d, want 2/2", p.RunningLen(), p.QueueLen())
	}
	if err := e.Run(simnet.Second); err != nil {
		t.Fatal(err)
	}
	if len(finished) != 4 {
		t.Fatalf("finished %d jobs, want 4", len(finished))
	}
	// First two at 10ms, next two at 20ms.
	if finished[0] != 10*simnet.Millisecond || finished[1] != 10*simnet.Millisecond {
		t.Errorf("first wave at %v,%v; want 10ms", finished[0], finished[1])
	}
	if finished[2] != 20*simnet.Millisecond || finished[3] != 20*simnet.Millisecond {
		t.Errorf("second wave at %v,%v; want 20ms", finished[2], finished[3])
	}
}

func TestLowerPStateStretchesServiceTime(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 1, Governor: FixedGovernor{State: 4}}) // P8
	var doneAt simnet.Time = -1
	p.Submit(10*simnet.Millisecond, func() { doneAt = e.Now() })
	if err := e.Run(simnet.Second); err != nil {
		t.Fatal(err)
	}
	// P8 = 1197 MHz vs P0 = 2261 MHz: stretch factor 2261/1197 ≈ 1.889.
	want := 10.0 * 2261.0 / 1197.0
	got := doneAt.Millis()
	if math.Abs(got-want) > 0.01 {
		t.Errorf("P8 job finished at %.3fms, want ~%.3fms", got, want)
	}
}

func TestMidJobStateChange(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 1})
	var doneAt simnet.Time = -1
	p.Submit(10*simnet.Millisecond, func() { doneAt = e.Now() })
	// Halve the speed at 5ms: 5ms of work remains, takes 5*1.889 = 9.44ms.
	e.Schedule(5*simnet.Millisecond, func() { p.ForceState(4) })
	if err := e.Run(simnet.Second); err != nil {
		t.Fatal(err)
	}
	want := 5 + 5*2261.0/1197.0
	if math.Abs(doneAt.Millis()-want) > 0.01 {
		t.Errorf("finished at %.3fms, want ~%.3fms", doneAt.Millis(), want)
	}
	if p.Transitions() != 1 {
		t.Errorf("Transitions = %d, want 1", p.Transitions())
	}
}

func TestPauseFreezesProgress(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 1})
	var doneAt simnet.Time = -1
	p.Submit(10*simnet.Millisecond, func() { doneAt = e.Now() })
	// Pause [4ms, 54ms): 50ms freeze in the middle.
	e.Schedule(4*simnet.Millisecond, func() { p.Pause() })
	e.Schedule(54*simnet.Millisecond, func() { p.Resume() })
	if err := e.Run(simnet.Second); err != nil {
		t.Fatal(err)
	}
	if doneAt != 60*simnet.Millisecond {
		t.Errorf("finished at %v, want 60ms (10ms work + 50ms pause)", doneAt)
	}
}

func TestPauseIsIdempotent(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 1})
	p.Pause()
	p.Pause()
	if !p.Paused() {
		t.Error("should be paused")
	}
	p.Resume()
	p.Resume()
	if p.Paused() {
		t.Error("should be resumed")
	}
}

func TestSubmitWhilePausedDefersStart(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 1})
	var doneAt simnet.Time = -1
	p.Pause()
	p.Submit(10*simnet.Millisecond, func() { doneAt = e.Now() })
	e.Schedule(30*simnet.Millisecond, func() { p.Resume() })
	if err := e.Run(simnet.Second); err != nil {
		t.Fatal(err)
	}
	if doneAt != 40*simnet.Millisecond {
		t.Errorf("finished at %v, want 40ms", doneAt)
	}
}

func TestCancelRunningJob(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 1})
	called := false
	j := p.Submit(10*simnet.Millisecond, func() { called = true })
	queuedDone := false
	p.Submit(5*simnet.Millisecond, func() { queuedDone = true })
	e.Schedule(2*simnet.Millisecond, func() {
		if !p.Cancel(j) {
			t.Error("Cancel running job returned false")
		}
	})
	if err := e.Run(simnet.Second); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("canceled job's callback ran")
	}
	if !queuedDone {
		t.Error("queued job did not start after cancel freed the core")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 1})
	p.Submit(10*simnet.Millisecond, nil)
	called := false
	j := p.Submit(10*simnet.Millisecond, func() { called = true })
	if !p.Cancel(j) {
		t.Error("Cancel queued job returned false")
	}
	if p.Cancel(j) {
		t.Error("double cancel returned true")
	}
	if p.Cancel(nil) {
		t.Error("Cancel(nil) returned true")
	}
	if err := e.Run(simnet.Second); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("canceled queued job ran")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 2})
	// One core busy for 50ms out of a 100ms window on a 2-core machine:
	// utilization = 0.25.
	base := p.BusyCoreMicros()
	start := e.Now()
	p.Submit(50*simnet.Millisecond, nil)
	if err := e.Run(100 * simnet.Millisecond); err != nil {
		t.Fatal(err)
	}
	util := p.Utilization(base, start)
	if math.Abs(util-0.25) > 1e-6 {
		t.Errorf("utilization = %v, want 0.25", util)
	}
}

func TestUtilizationDuringPauseCountsBusy(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 2})
	base := p.BusyCoreMicros()
	start := e.Now()
	p.Pause()
	if err := e.Run(100 * simnet.Millisecond); err != nil {
		t.Fatal(err)
	}
	p.Resume()
	util := p.Utilization(base, start)
	if math.Abs(util-1.0) > 1e-6 {
		t.Errorf("paused utilization = %v, want 1.0 (GC spins the CPU)", util)
	}
}

func TestStepGovernorRampsUpUnderLoad(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{
		Cores:         1,
		Governor:      StepGovernor{UpThreshold: 0.8, DownThreshold: 0.4},
		ControlPeriod: 100 * simnet.Millisecond,
		InitialState:  4, // start slow, like an idle power-saving CPU
	})
	p.Start()
	// Saturate the CPU: always one job pending.
	var feed func()
	feed = func() { p.Submit(5*simnet.Millisecond, feed) }
	feed()
	if err := e.Run(2 * simnet.Second); err != nil {
		t.Fatal(err)
	}
	if p.State() != 0 {
		t.Errorf("state after sustained load = P[%d], want P0 (index 0)", p.State())
	}
	// One step per period: from index 4 to 0 takes >= 4 transitions.
	if p.Transitions() < 4 {
		t.Errorf("transitions = %d, want >= 4 (one step per period)", p.Transitions())
	}
}

func TestStepGovernorDropsWhenIdle(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{
		Cores:         1,
		Governor:      StepGovernor{UpThreshold: 0.8, DownThreshold: 0.4},
		ControlPeriod: 100 * simnet.Millisecond,
		InitialState:  0,
	})
	p.Start()
	if err := e.Run(2 * simnet.Second); err != nil {
		t.Fatal(err)
	}
	if p.State() != len(p.PStates())-1 {
		t.Errorf("idle state = P[%d], want slowest", p.State())
	}
}

func TestStepGovernorHoldsInBand(t *testing.T) {
	g := StepGovernor{UpThreshold: 0.8, DownThreshold: 0.4}
	if got := g.Decide(0.6, 2, 5); got != 2 {
		t.Errorf("in-band decision = %d, want hold at 2", got)
	}
	if got := g.Decide(0.95, 0, 5); got != 0 {
		t.Errorf("already fastest = %d, want 0", got)
	}
	if got := g.Decide(0.1, 4, 5); got != 4 {
		t.Errorf("already slowest = %d, want 4", got)
	}
}

func TestFixedGovernorClamps(t *testing.T) {
	g := FixedGovernor{State: 99}
	if got := g.Decide(0.5, 0, 5); got != 4 {
		t.Errorf("clamped fixed state = %d, want 4", got)
	}
	g2 := FixedGovernor{State: -1}
	if got := g2.Decide(0.5, 0, 5); got != 0 {
		t.Errorf("clamped fixed state = %d, want 0", got)
	}
}

func TestOnStateChangeCallback(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 1})
	var states []int
	p.OnStateChange(func(s int) { states = append(states, s) })
	p.ForceState(3)
	p.ForceState(1)
	if len(states) != 2 || states[0] != 3 || states[1] != 1 {
		t.Errorf("callbacks = %v, want [3 1]", states)
	}
}

func TestStateResidency(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 1})
	if err := e.Run(100 * simnet.Millisecond); err != nil {
		t.Fatal(err)
	}
	p.ForceState(4)
	if err := e.Run(300 * simnet.Millisecond); err != nil {
		t.Fatal(err)
	}
	res := p.StateResidency()
	if math.Abs(res[0]-1.0/3.0) > 0.01 {
		t.Errorf("P0 residency = %v, want ~1/3", res[0])
	}
	if math.Abs(res[4]-2.0/3.0) > 0.01 {
		t.Errorf("P8 residency = %v, want ~2/3", res[4])
	}
}

func TestFIFOOrder(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 1})
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		p.Submit(simnet.Millisecond, func() { order = append(order, i) })
	}
	if err := e.Run(simnet.Second); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v, want FIFO", order)
		}
	}
}

func TestZeroWorkJob(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 1})
	done := false
	p.Submit(0, func() { done = true })
	if err := e.Run(simnet.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("zero-work job did not complete")
	}
	p2 := newTestProcessor(t, e, Config{Cores: 1})
	done2 := false
	p2.Submit(-5, func() { done2 = true })
	if err := e.Run(2 * simnet.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !done2 {
		t.Error("negative-work job did not complete")
	}
}

func TestOndemandGovernorJumpsToFit(t *testing.T) {
	table := TableII()
	g := OndemandGovernor{Target: 0.8, Table: table}
	// Pegged at the slowest state: the queue hides true demand, so the
	// governor jumps straight to P0.
	if got := g.Decide(1.0, 4, len(table)); got != 0 {
		t.Errorf("pegged CPU decision = %d, want jump to P0", got)
	}
	// Partial load at P8 (0.6 util → 0.32 P0-equivalent): P4 runs it at
	// ~0.42 ≤ 0.8, but so does P8 itself (0.6 ≤ 0.8) — slowest fit wins.
	if got := g.Decide(0.6, 4, len(table)); got != 4 {
		t.Errorf("fitting decision = %d, want hold at slowest fit", got)
	}
	// Moderate load at P0 steps down as far as still fits: demand 0.4 at
	// P0 → P8 predicts 0.4×2261/1197 ≈ 0.76 ≤ 0.8.
	if got := g.Decide(0.4, 0, len(table)); got != len(table)-1 {
		t.Errorf("step-down decision = %d, want slowest fitting state", got)
	}
	// Idle drops straight to the slowest state.
	if got := g.Decide(0.01, 0, len(table)); got != len(table)-1 {
		t.Errorf("idle decision = %d, want slowest", got)
	}
	// Saturated at P0 stays at P0.
	if got := g.Decide(1.0, 0, len(table)); got != 0 {
		t.Errorf("saturated decision = %d, want 0", got)
	}
}

func TestOndemandGovernorDegenerateInputs(t *testing.T) {
	g := OndemandGovernor{Target: 0.8, Table: TableII()}
	// Mismatched table length: hold.
	if got := g.Decide(0.5, 2, 3); got != 2 {
		t.Errorf("mismatched table decision = %d, want hold", got)
	}
	bad := OndemandGovernor{Target: 0, Table: TableII()}
	if got := bad.Decide(0.5, 1, 5); got != 1 {
		t.Errorf("zero-target decision = %d, want hold", got)
	}
}

func TestOndemandGovernorTracksBurstFasterThanStep(t *testing.T) {
	run := func(gov Governor) simnet.Time {
		e := simnet.NewEngine()
		p, err := NewProcessor(e, Config{
			Cores:         1,
			Governor:      gov,
			ControlPeriod: 100 * simnet.Millisecond,
			InitialState:  4,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		// Saturate continuously; record when P0 is first reached.
		var reached simnet.Time = -1
		p.OnStateChange(func(s int) {
			if s == 0 && reached < 0 {
				reached = e.Now()
			}
		})
		var feed func()
		feed = func() { p.Submit(5*simnet.Millisecond, feed) }
		feed()
		if err := e.Run(5 * simnet.Second); err != nil {
			t.Fatal(err)
		}
		return reached
	}
	stepAt := run(StepGovernor{UpThreshold: 0.9, DownThreshold: 0.4})
	ondemandAt := run(OndemandGovernor{Target: 0.8, Table: TableII()})
	if ondemandAt < 0 || stepAt < 0 {
		t.Fatal("a governor never reached P0 under saturation")
	}
	if ondemandAt >= stepAt {
		t.Errorf("ondemand reached P0 at %v, step at %v; ondemand should be faster", ondemandAt, stepAt)
	}
}

func TestPowerModelBusyWatts(t *testing.T) {
	m := PowerModel{StaticWatts: 4, DynamicWatts: 12}
	if got := m.BusyWatts(1.0); math.Abs(got-16) > 1e-9 {
		t.Errorf("BusyWatts(1) = %v, want 16", got)
	}
	// Half frequency: dynamic falls by 8x.
	if got := m.BusyWatts(0.5); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("BusyWatts(0.5) = %v, want 5.5", got)
	}
	// Zero-value model picks defaults.
	var zero PowerModel
	if got := zero.BusyWatts(1.0); math.Abs(got-16) > 1e-9 {
		t.Errorf("default BusyWatts(1) = %v, want 16", got)
	}
}

func TestEnergyJoulesIdleVsBusy(t *testing.T) {
	m := PowerModel{StaticWatts: 4, DynamicWatts: 12}
	run := func(busy bool) float64 {
		e := simnet.NewEngine()
		p := newTestProcessor(t, e, Config{Cores: 2})
		if busy {
			var feed func()
			feed = func() { p.Submit(10*simnet.Millisecond, feed) }
			feed()
			feed() // both cores
		}
		if err := e.Run(10 * simnet.Second); err != nil {
			t.Fatal(err)
		}
		return p.EnergyJoules(m)
	}
	idle := run(false)
	busy := run(true)
	// Idle: 2 cores × 4W × 10s = 80J.
	if math.Abs(idle-80) > 1 {
		t.Errorf("idle energy = %v J, want ~80", idle)
	}
	// Busy at P0: + 2 cores × 12W × 10s = 240J dynamic.
	if math.Abs(busy-320) > 5 {
		t.Errorf("busy energy = %v J, want ~320", busy)
	}
}

func TestEnergyLowerAtSlowState(t *testing.T) {
	m := PowerModel{}
	run := func(state int) float64 {
		e := simnet.NewEngine()
		p := newTestProcessor(t, e, Config{Cores: 1, Governor: FixedGovernor{State: state}})
		var feed func()
		feed = func() { p.Submit(10*simnet.Millisecond, feed) }
		feed()
		if err := e.Run(10 * simnet.Second); err != nil {
			t.Fatal(err)
		}
		return p.EnergyJoules(m)
	}
	fast := run(0)
	slow := run(4)
	if slow >= fast {
		t.Errorf("P8 energy %v J not below P0 %v J for a pegged core", slow, fast)
	}
}

func TestEnergyZeroAtTimeZero(t *testing.T) {
	e := simnet.NewEngine()
	p := newTestProcessor(t, e, Config{Cores: 1})
	if got := p.EnergyJoules(PowerModel{}); got != 0 {
		t.Errorf("energy at t=0 = %v, want 0", got)
	}
}
