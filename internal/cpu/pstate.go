// Package cpu models a multi-core processor with dynamic frequency scaling
// (Intel SpeedStep, §IV-C of the paper). Servers submit units of CPU work;
// the processor executes up to NumCores jobs in parallel, scaled by the
// current P-state frequency. A pluggable governor moves between P-states
// on a control period; the paper's Dell BIOS-level control algorithm is
// modeled by StepGovernor with a long control period, which cannot follow
// bursty demand and therefore creates transient bottlenecks.
//
// The processor also supports stop-the-world pauses (used by the JVM GC
// model): while paused, running jobs make no progress but still occupy
// cores, exactly like a JVM freeze under a serial collector.
package cpu

// PState is one performance state of the processor: a name and a core
// clock frequency in MHz.
type PState struct {
	Name string
	MHz  int
}

// TableII returns the paper's Table II: the subset of Xeon P-states
// supported by the authors' machines. P0 is the highest-frequency state;
// the list is ordered from fastest to slowest.
func TableII() []PState {
	return []PState{
		{Name: "P0", MHz: 2261},
		{Name: "P1", MHz: 2128},
		{Name: "P4", MHz: 1729},
		{Name: "P5", MHz: 1596},
		{Name: "P8", MHz: 1197},
	}
}

// Governor decides which P-state the processor should run in. Decide is
// called once per control period with the utilization (0..1) observed over
// the period that just ended and the current P-state index; it returns the
// desired index. Implementations must return an index in [0, numStates).
type Governor interface {
	Decide(utilization float64, current, numStates int) int
}

// FixedGovernor pins the processor to one P-state. A FixedGovernor{State:
// 0} models "SpeedStep disabled in BIOS" (§IV-D): the CPU always runs at
// P0.
type FixedGovernor struct {
	State int
}

var _ Governor = FixedGovernor{}

// Decide always returns the pinned state (clamped to the valid range).
func (g FixedGovernor) Decide(_ float64, _, numStates int) int {
	return clampState(g.State, numStates)
}

// StepGovernor moves at most one P-state per control period: up (toward
// P0) when utilization exceeds UpThreshold, down (toward the slowest
// state) when it falls below DownThreshold. Combined with a long control
// period this reproduces the sluggish BIOS-level SpeedStep control the
// paper blames for the MySQL transient bottlenecks: the clock speed lags
// the bursty real-time workload (§IV-C).
type StepGovernor struct {
	// UpThreshold is the utilization above which the governor raises the
	// clock by one state. Typical: 0.8.
	UpThreshold float64
	// DownThreshold is the utilization below which the governor lowers the
	// clock by one state. Typical: 0.4.
	DownThreshold float64
}

var _ Governor = StepGovernor{}

// Decide implements Governor.
func (g StepGovernor) Decide(utilization float64, current, numStates int) int {
	switch {
	case utilization > g.UpThreshold:
		return clampState(current-1, numStates) // index 0 is fastest
	case utilization < g.DownThreshold:
		return clampState(current+1, numStates)
	default:
		return clampState(current, numStates)
	}
}

// OndemandGovernor jumps directly to the slowest P-state that still keeps
// predicted utilization at or below Target — the behaviour of a modern
// OS-level "ondemand"/"schedutil" policy. Unlike StepGovernor it can move
// several states at once, so it tracks bursty demand even with a long
// control period. It exists as the counterfactual to the paper's
// sluggish BIOS algorithm: the transient bottlenecks of §IV-C come from
// the *control algorithm*, not from frequency scaling as such.
type OndemandGovernor struct {
	// Target is the desired utilization ceiling (0 < Target ≤ 1).
	// Typical: 0.8.
	Target float64
	// Table is the P-state list the processor runs (needed to predict
	// utilization across states). Must match the processor's table.
	Table []PState
}

var _ Governor = OndemandGovernor{}

// Decide implements Governor.
func (g OndemandGovernor) Decide(utilization float64, current, numStates int) int {
	if len(g.Table) != numStates || numStates == 0 || g.Target <= 0 {
		return clampState(current, numStates)
	}
	// A pegged CPU hides its true demand behind the queue; jump straight
	// to full speed (the classic "ondemand" rule).
	if utilization >= 0.98 {
		return 0
	}
	// Demand in P0-equivalent core-fraction: util × (current freq / P0).
	demand := utilization * float64(g.Table[clampState(current, numStates)].MHz) / float64(g.Table[0].MHz)
	// Choose the slowest state that keeps predicted utilization ≤ Target.
	for s := numStates - 1; s >= 0; s-- {
		predicted := demand * float64(g.Table[0].MHz) / float64(g.Table[s].MHz)
		if predicted <= g.Target {
			return s
		}
	}
	return 0
}

func clampState(s, numStates int) int {
	if s < 0 {
		return 0
	}
	if s >= numStates {
		return numStates - 1
	}
	return s
}
