package ntier

import (
	"strings"
	"testing"

	"transientbd/internal/core"
	"transientbd/internal/jvm"
	"transientbd/internal/simnet"
	"transientbd/internal/trace"
	"transientbd/internal/workload"
)

// smallConfig returns a fast-running config for functional tests.
func smallConfig() Config {
	return Config{
		Users:    200,
		Duration: 20 * simnet.Second,
		Ramp:     5 * simnet.Second,
		Seed:     42,
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Error("want error for zero users")
	}
	if _, err := Build(Config{Users: 10, Topology: Topology{Web: 1}}); err == nil {
		t.Error("want error for partial topology")
	}
	if _, err := Build(Config{Users: 10, NoiseSigma: -1}); err == nil {
		t.Error("want error for negative noise")
	}
}

func TestTopologyString(t *testing.T) {
	if got := Default1L2S1L2S().String(); got != "1L/2S/1L/2S" {
		t.Errorf("String = %q, want 1L/2S/1L/2S", got)
	}
}

func TestDefaultTopologyServerNames(t *testing.T) {
	sys, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, srv := range sys.AllServers() {
		names = append(names, srv.Name())
	}
	want := []string{"apache", "tomcat-1", "tomcat-2", "cjdbc", "mysql-1", "mysql-2"}
	if len(names) != len(want) {
		t.Fatalf("servers = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("server[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestRunProducesConsistentResult(t *testing.T) {
	sys, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no RT samples")
	}
	if len(res.Visits) == 0 {
		t.Fatal("no visits")
	}
	if res.WindowStart != 5*simnet.Second || res.WindowEnd != 25*simnet.Second {
		t.Errorf("window = [%v,%v]", res.WindowStart, res.WindowEnd)
	}
	for _, s := range res.Samples {
		if s.Issued < res.WindowStart {
			t.Fatalf("ramp sample leaked: issued %v", s.Issued)
		}
		if s.Done < s.Issued {
			t.Fatalf("negative RT: %+v", s)
		}
	}
	// Utilization present for every server, in [0,1].
	for _, srv := range sys.AllServers() {
		u, ok := res.Utilization[srv.Name()]
		if !ok {
			t.Errorf("missing utilization for %s", srv.Name())
		}
		if u < 0 || u > 1.000001 {
			t.Errorf("utilization[%s] = %v out of range", srv.Name(), u)
		}
	}
}

func TestTransactionStructure(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 20 // light load: no queueing weirdness
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	mixByName := make(map[string]workload.Interaction)
	for _, ix := range workload.BrowseOnlyMix() {
		mixByName[ix.Name] = ix
	}
	txns := trace.Transactions(res.Visits)
	checked := 0
	for _, visits := range txns {
		var apacheVisits, tomcatVisits, cjdbcVisits, mysqlVisits int
		var pageClass string
		for _, v := range visits {
			switch {
			case v.Server == "apache":
				apacheVisits++
				pageClass = v.Class
			case strings.HasPrefix(v.Server, "tomcat"):
				tomcatVisits++
			case v.Server == "cjdbc":
				cjdbcVisits++
			case strings.HasPrefix(v.Server, "mysql"):
				mysqlVisits++
			}
		}
		if apacheVisits == 0 {
			continue // transaction truncated at capture boundary
		}
		ix, ok := mixByName[pageClass]
		if !ok {
			t.Fatalf("unknown page class %q", pageClass)
		}
		if apacheVisits != 1 || tomcatVisits != 1 {
			t.Fatalf("txn visits: apache=%d tomcat=%d, want 1/1", apacheVisits, tomcatVisits)
		}
		if cjdbcVisits != len(ix.Queries) || mysqlVisits != len(ix.Queries) {
			t.Fatalf("txn %s: cjdbc=%d mysql=%d, want %d queries",
				pageClass, cjdbcVisits, mysqlVisits, len(ix.Queries))
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("checked only %d complete transactions", checked)
	}
}

func TestLowLoadResponseTimeNearServiceDemand(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 10
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Total service demand per page ≈ 7ms; at 10 users there is no
	// queueing, so mean RT must be close to that.
	rts := workload.ResponseTimesSeconds(res.Samples)
	var sum float64
	for _, rt := range rts {
		sum += rt
	}
	mean := sum / float64(len(rts))
	if mean < 0.004 || mean > 0.02 {
		t.Errorf("idle mean RT = %.4fs, want ~0.007s", mean)
	}
}

func TestRoundRobinBalancesTiers(t *testing.T) {
	sys, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	per := trace.PerServer(res.Visits)
	t1, t2 := len(per["tomcat-1"]), len(per["tomcat-2"])
	if t1 == 0 || t2 == 0 {
		t.Fatal("a tomcat received no traffic")
	}
	ratio := float64(t1) / float64(t2)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("tomcat balance = %d/%d", t1, t2)
	}
	m1, m2 := len(per["mysql-1"]), len(per["mysql-2"])
	ratio = float64(m1) / float64(m2)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("mysql balance = %d/%d", m1, m2)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (*Result, error) {
		sys, err := Build(smallConfig())
		if err != nil {
			return nil, err
		}
		return sys.Run()
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) || len(a.Messages) != len(b.Messages) {
		t.Fatalf("runs differ: %d/%d samples, %d/%d messages",
			len(a.Samples), len(b.Samples), len(a.Messages), len(b.Messages))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfgA := smallConfig()
	cfgB := smallConfig()
	cfgB.Seed = 43
	sysA, err := Build(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := Build(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := sysA.Run()
	if err != nil {
		t.Fatal(err)
	}
	resB, err := sysB.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Messages) == len(resB.Messages) && len(resA.Samples) == len(resB.Samples) {
		same := true
		for i := range resA.Samples {
			if resA.Samples[i] != resB.Samples[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical runs")
		}
	}
}

func TestGCDisabledWhenCollectorZero(t *testing.T) {
	sys, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.AppHeaps()) != 0 {
		t.Errorf("heaps = %d, want 0 with no collector", len(sys.AppHeaps()))
	}
	for _, srv := range sys.AppServers() {
		if srv.Heap() != nil {
			t.Error("app server has heap despite disabled GC")
		}
	}
}

func TestGCEnabledCollectsUnderLoad(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 2000
	cfg.AppCollector = jvm.CollectorSerial
	cfg.AppHeapBytes = 128 * jvm.MB
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.AppHeaps()) != 2 {
		t.Fatalf("heaps = %d, want 2", len(sys.AppHeaps()))
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	var collections int
	for _, h := range sys.AppHeaps() {
		collections += h.Collections()
	}
	if collections == 0 {
		t.Error("no collections despite sustained allocation")
	}
}

func TestSpeedStepGovernorsOnlyOnDB(t *testing.T) {
	cfg := smallConfig()
	// Enough demand that the DB governor must climb out of its
	// power-saving initial state (P8 capacity ≈ 3,000 queries/s).
	cfg.Users = 9000
	cfg.DBSpeedStep = true
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// Non-DB tiers are pinned to P0 and never transition.
	for _, srv := range append(sys.WebServers(), sys.AppServers()...) {
		if srv.Processor().Transitions() != 0 {
			t.Errorf("%s transitions = %d, want 0", srv.Name(), srv.Processor().Transitions())
		}
		if srv.Processor().State() != 0 {
			t.Errorf("%s state = %d, want P0", srv.Name(), srv.Processor().State())
		}
	}
	// DB governors should have moved (they start at the slowest state).
	moved := false
	for _, srv := range sys.DBServers() {
		if srv.Processor().Transitions() > 0 {
			moved = true
		}
	}
	if !moved {
		t.Error("no DB P-state transitions despite SpeedStep enabled")
	}
}

func TestSpeedStepDisabledPinsP0(t *testing.T) {
	sys, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for _, srv := range sys.DBServers() {
		if srv.Processor().State() != 0 {
			t.Errorf("%s state = %d, want pinned P0", srv.Name(), srv.Processor().State())
		}
	}
}

func TestCustomTopology(t *testing.T) {
	cfg := smallConfig()
	cfg.Topology = Topology{Web: 2, App: 3, Cluster: 1, DB: 4}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.WebServers()) != 2 || len(sys.AppServers()) != 3 ||
		len(sys.ClusterServers()) != 1 || len(sys.DBServers()) != 4 {
		t.Error("custom topology not honored")
	}
	if sys.WebServers()[0].Name() != "apache-1" {
		t.Errorf("multi-instance web name = %q, want apache-1", sys.WebServers()[0].Name())
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Error("custom topology produced no samples")
	}
}

func TestPagesPerSecondEmptyWindow(t *testing.T) {
	r := &Result{}
	if r.PagesPerSecond() != 0 {
		t.Error("empty window should yield 0")
	}
}

func TestReadWriteMixTouchesDisk(t *testing.T) {
	cfg := smallConfig()
	cfg.Mix = workload.ReadWriteMix()
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	var dbDisk, otherDisk int64
	for _, srv := range sys.DBServers() {
		dbDisk += srv.DiskBytes()
	}
	for _, srv := range append(sys.WebServers(), sys.AppServers()...) {
		otherDisk += srv.DiskBytes()
	}
	if dbDisk == 0 {
		t.Error("read/write mix produced no database disk traffic")
	}
	if otherDisk != 0 {
		t.Errorf("non-DB tiers wrote %d disk bytes, want 0", otherDisk)
	}
	// Browse-only control: no disk traffic anywhere.
	sys2, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Run(); err != nil {
		t.Fatal(err)
	}
	for _, srv := range sys2.AllServers() {
		if srv.DiskBytes() != 0 {
			t.Errorf("%s wrote disk bytes under browse-only mix", srv.Name())
		}
	}
}

func TestAntagonistValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Antagonist = &AntagonistConfig{}
	if _, err := Build(cfg); err == nil {
		t.Error("want error for missing target")
	}
	cfg.Antagonist = &AntagonistConfig{Target: "nosuch"}
	if _, err := Build(cfg); err == nil {
		t.Error("want error for unknown target")
	}
	cfg.Antagonist = &AntagonistConfig{
		Target: "mysql-1", Period: simnet.Second, BurstLen: 2 * simnet.Second,
	}
	if _, err := Build(cfg); err == nil {
		t.Error("want error for burst longer than period")
	}
}

func TestAntagonistStealsVictimCPU(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 500
	cfg.Antagonist = &AntagonistConfig{
		Target:   "mysql-1",
		Period:   2 * simnet.Second,
		BurstLen: 400 * simnet.Millisecond,
	}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The victim's CPU runs visibly hotter than its twin's: the hog adds
	// ~20% duty cycle of full occupancy.
	victim := res.Utilization["mysql-1"]
	twin := res.Utilization["mysql-2"]
	if victim < twin+0.1 {
		t.Errorf("victim util %.3f not clearly above twin %.3f", victim, twin)
	}
}

// The detection method rests on Denning & Buzen's operational laws; the
// simulator must satisfy them. Little's law per server: mean concurrent
// requests = completion rate × mean residence time.
func TestOperationalLawsHoldPerServer(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 2000
	cfg.Duration = 30 * simnet.Second
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	w := core.Window{Start: res.WindowStart, End: res.WindowEnd}
	for _, name := range []string{"apache", "tomcat-1", "cjdbc", "mysql-1"} {
		visits := trace.Filter(res.Visits, name)
		// Restrict to visits fully inside the window.
		var inWin []trace.Visit
		var totalResidence float64
		for _, v := range visits {
			if v.Arrive >= w.Start && v.Depart < w.End {
				inWin = append(inWin, v)
				totalResidence += v.Residence().Seconds()
			}
		}
		if len(inWin) < 100 {
			t.Fatalf("%s: only %d in-window visits", name, len(inWin))
		}
		load, err := core.LoadSeries(inWin, w, 100*simnet.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		var meanLoad float64
		for _, l := range load.Values() {
			meanLoad += l
		}
		meanLoad /= float64(load.Len())

		span := (w.End - w.Start).Seconds()
		completionRate := float64(len(inWin)) / span
		meanResidence := totalResidence / float64(len(inWin))
		littles := completionRate * meanResidence
		if meanLoad == 0 {
			t.Fatalf("%s: zero load", name)
		}
		if ratio := littles / meanLoad; ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%s: Little's law ratio = %.3f (N̄=%.3f, X·R̄=%.3f)",
				name, ratio, meanLoad, littles)
		}
	}
}
