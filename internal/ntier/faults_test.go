package ntier

import (
	"testing"

	"transientbd/internal/simnet"
	"transientbd/internal/trace"
)

func faultFixture(n int) []trace.Message {
	msgs := make([]trace.Message, n)
	for i := range msgs {
		from := "apache"
		if i%2 == 1 {
			from = "mysql"
		}
		msgs[i] = trace.Message{
			At:    simnet.Time(i) * simnet.Millisecond,
			From:  from,
			To:    "tomcat",
			Dir:   trace.Call,
			HopID: int64(i + 1),
		}
	}
	return msgs
}

func TestInjectFaultsZeroSpecIsIdentity(t *testing.T) {
	msgs := faultFixture(100)
	out, rep := InjectFaults(msgs, FaultSpec{})
	if rep.Dropped+rep.Duplicated+rep.Skewed+rep.Truncated != 0 {
		t.Fatalf("zero spec injected faults: %+v", rep)
	}
	if len(out) != len(msgs) {
		t.Fatalf("output %d messages, want %d", len(out), len(msgs))
	}
	for i := range msgs {
		if out[i] != msgs[i] {
			t.Fatalf("message %d changed: %+v", i, out[i])
		}
	}
}

func TestInjectFaultsDeterministic(t *testing.T) {
	msgs := faultFixture(500)
	spec := FaultSpec{Seed: 7, LossRate: 0.1, DupRate: 0.05}
	a, repA := InjectFaults(msgs, spec)
	b, repB := InjectFaults(msgs, spec)
	if repA != repB || len(a) != len(b) {
		t.Fatalf("same spec diverged: %+v vs %+v", repA, repB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("message %d differs between identical runs", i)
		}
	}
}

func TestInjectFaultsApproximateLossRate(t *testing.T) {
	msgs := faultFixture(10000)
	_, rep := InjectFaults(msgs, FaultSpec{Seed: 3, LossRate: 0.05})
	if rep.Dropped < 350 || rep.Dropped > 650 {
		t.Errorf("dropped %d of 10000 at 5%% loss, want ~500", rep.Dropped)
	}
	if rep.Output != rep.Input-rep.Dropped {
		t.Errorf("report does not add up: %+v", rep)
	}
}

func TestInjectFaultsTruncation(t *testing.T) {
	msgs := faultFixture(100) // timestamps 0..99ms
	out, rep := InjectFaults(msgs, FaultSpec{TruncateAt: 50 * simnet.Millisecond})
	if rep.Truncated != 50 || len(out) != 50 {
		t.Fatalf("truncated %d, kept %d; want 50/50", rep.Truncated, len(out))
	}
	for _, m := range out {
		if m.At >= 50*simnet.Millisecond {
			t.Fatalf("message at %v survived truncation", m.At)
		}
	}
}

func TestInjectFaultsSkew(t *testing.T) {
	msgs := faultFixture(10)
	out, rep := InjectFaults(msgs, FaultSpec{
		SkewByServer: map[string]simnet.Duration{"mysql": -5 * simnet.Millisecond},
	})
	if rep.Skewed != 5 {
		t.Fatalf("skewed %d messages, want mysql's 5", rep.Skewed)
	}
	for i, m := range out {
		want := msgs[i].At
		if msgs[i].From == "mysql" {
			want -= 5 * simnet.Millisecond
		}
		if m.At != want {
			t.Fatalf("message %d at %v, want %v", i, m.At, want)
		}
	}
}

func TestInjectFaultsApproximateDupRate(t *testing.T) {
	msgs := faultFixture(10000)
	out, rep := InjectFaults(msgs, FaultSpec{Seed: 3, DupRate: 0.05})
	if rep.Duplicated < 350 || rep.Duplicated > 650 {
		t.Errorf("duplicated %d of 10000 at 5%% dup, want ~500", rep.Duplicated)
	}
	if rep.Output != rep.Input+rep.Duplicated || len(out) != rep.Output {
		t.Errorf("report does not add up: %+v (len(out)=%d)", rep, len(out))
	}
}
