package ntier

import (
	"sort"

	"transientbd/internal/simnet"
)

// CauseKind labels a simulated transient-bottleneck mechanism. The
// values are the machine-readable ground-truth vocabulary shared with
// the attribution engine (internal/cause) and the experiments harness:
// a scenario emits its kind here, and the attribution experiment asserts
// the top-ranked verdict names the same kind.
type CauseKind string

// Ground-truth cause kinds emitted by the scenario battery.
const (
	// CausePoolExhaustion: a bounded connection pool in front of a tier
	// clips its concurrency; callers queue for connections upstream.
	CausePoolExhaustion CauseKind = "conn-pool-exhaustion"
	// CauseLockConvoy: a critical section serializes a tier; a periodic
	// long hold parks every request behind the lock.
	CauseLockConvoy CauseKind = "lock-convoy"
	// CauseCacheStampede: a cache invalidation sends the whole miss
	// storm downstream until the cache refills.
	CauseCacheStampede CauseKind = "cache-stampede"
	// CauseNoisyNeighbor: a co-located tenant periodically steals every
	// core of one host.
	CauseNoisyNeighbor CauseKind = "noisy-neighbor"
	// CauseOverload: an open-loop arrival process exceeds capacity, so
	// queues grow without the closed-loop's self-limiting feedback.
	CauseOverload CauseKind = "overload"
	// CauseSlowStart: a freshly autoscaled instance serves at a fraction
	// of its steady-state speed while caches and JITs warm.
	CauseSlowStart CauseKind = "autoscale-slow-start"
)

// TruthWindow is one [Start, End) span during which a ground-truth cause
// was actively injected.
type TruthWindow struct {
	Start, End simnet.Time
}

// GroundTruth is one machine-readable injection record: which mechanism
// was active, which servers it targeted, and when. A Result carries one
// record per configured mechanism (pool exhaustion emits one per capped
// server, since their wait windows differ).
type GroundTruth struct {
	Cause   CauseKind
	Servers []string
	Windows []TruthWindow
}

// clipWindows intersects windows with [start, end) and drops empties.
func clipWindows(ws []TruthWindow, start, end simnet.Time) []TruthWindow {
	out := make([]TruthWindow, 0, len(ws))
	for _, w := range ws {
		if w.Start < start {
			w.Start = start
		}
		if w.End > end {
			w.End = end
		}
		if w.End > w.Start {
			out = append(out, w)
		}
	}
	return out
}

// coalesceWindows sorts windows and merges any pair closer than gap,
// dropping merged windows shorter than minLen. Used where the raw
// injection signal flickers (e.g. pool waiter counts crossing zero for
// an instant between a release and the next acquire).
func coalesceWindows(ws []TruthWindow, gap, minLen simnet.Duration) []TruthWindow {
	if len(ws) == 0 {
		return nil
	}
	sorted := make([]TruthWindow, len(ws))
	copy(sorted, ws)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	merged := []TruthWindow{sorted[0]}
	for _, w := range sorted[1:] {
		last := &merged[len(merged)-1]
		if w.Start-last.End <= simnet.Time(gap) {
			if w.End > last.End {
				last.End = w.End
			}
			continue
		}
		merged = append(merged, w)
	}
	out := merged[:0]
	for _, w := range merged {
		if w.End-w.Start >= simnet.Time(minLen) {
			out = append(out, w)
		}
	}
	return out
}
