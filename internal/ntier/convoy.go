package ntier

import (
	"transientbd/internal/simnet"
)

// serialLock is a FIFO critical section held off-CPU for a fixed time,
// modelling a mutex guarding an I/O-bound section (log append, row lock):
// the holder does not occupy a core, but everything behind it queues.
// A periodic long hold (the "janitor") turns the queue into a convoy.
type serialLock struct {
	engine *simnet.Engine
	busy   bool
	q      []lockReq
}

type lockReq struct {
	hold     simnet.Duration
	acquired func() // optional, called when the lock is granted
	done     func() // optional, called when the hold ends
}

func newSerialLock(engine *simnet.Engine) *serialLock {
	return &serialLock{engine: engine}
}

// with runs done after holding the lock for hold, queueing FIFO behind
// the current holder.
func (l *serialLock) with(hold simnet.Duration, acquired, done func()) {
	r := lockReq{hold: hold, acquired: acquired, done: done}
	if l.busy {
		l.q = append(l.q, r)
		return
	}
	l.busy = true
	l.run(r)
}

func (l *serialLock) run(r lockReq) {
	if r.acquired != nil {
		r.acquired()
	}
	l.engine.Schedule(r.hold, func() {
		if r.done != nil {
			r.done()
		}
		if len(l.q) == 0 {
			l.busy = false
			return
		}
		next := l.q[0]
		l.q = l.q[1:]
		l.run(next)
	})
}

// queryCache is the app-tier result cache behind the cache-stampede
// scenario. Hit probability scales with how full the cache is; a
// periodic invalidation empties it, and every miss both goes downstream
// and refills one entry, so the whole miss storm lands on the DB tier
// until the cache warms back up.
type queryCache struct {
	rng     *simnet.RNG
	hitRate float64 // warm hit probability
	entries int     // entries needed for a warm cache
	filled  int

	// Stampede accounting for ground truth.
	stormStart  simnet.Time
	inStorm     bool
	stormWindow []TruthWindow
}

func newQueryCache(rng *simnet.RNG, hitRate float64, entries int) *queryCache {
	return &queryCache{rng: rng, hitRate: hitRate, entries: entries, filled: entries}
}

// lookup reports whether a query hits the cache, refilling one entry on
// a miss. The warm-hit threshold at which a storm window closes is 90%
// of the configured hit rate.
func (c *queryCache) lookup(now simnet.Time) bool {
	h := c.hitRate * float64(c.filled) / float64(c.entries)
	hit := c.rng.Float64() < h
	if !hit && c.filled < c.entries {
		c.filled++
		if c.inStorm && float64(c.filled) >= 0.9*float64(c.entries) {
			c.inStorm = false
			c.stormWindow = append(c.stormWindow, TruthWindow{Start: c.stormStart, End: now})
		}
	}
	return hit
}

// invalidate empties the cache, opening a storm window.
func (c *queryCache) invalidate(now simnet.Time) {
	c.filled = 0
	if !c.inStorm {
		c.inStorm = true
		c.stormStart = now
	}
}

// windows returns the recorded storm windows, closing any open storm at
// now.
func (c *queryCache) windows(now simnet.Time) []TruthWindow {
	ws := c.stormWindow
	if c.inStorm {
		ws = append(append([]TruthWindow(nil), ws...), TruthWindow{Start: c.stormStart, End: now})
	}
	return ws
}
