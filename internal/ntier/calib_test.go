package ntier

import (
	"testing"

	"transientbd/internal/jvm"
	"transientbd/internal/simnet"
	"transientbd/internal/stats"
	"transientbd/internal/workload"
)

// TestCalibrationWL8000 pins the headline calibration of DESIGN.md: at the
// paper's WL 8,000 (SpeedStep off, healthy JDK 1.6 collector) the system
// is NOT saturated, Tomcat sits near 80% CPU and MySQL near 78% (Fig 3 /
// Table I), and throughput follows the closed-loop law.
func TestCalibrationWL8000(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run takes a few seconds")
	}
	sys, err := Build(Config{
		Users:        8000,
		Duration:     60 * simnet.Second,
		Ramp:         20 * simnet.Second,
		Seed:         1,
		AppCollector: jvm.CollectorConcurrent,
		Burst:        DefaultBurst(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	pages := res.PagesPerSecond()
	if pages < 950 || pages > 1350 {
		t.Errorf("throughput = %.0f pages/s, want ~1000-1300", pages)
	}
	// Tier utilizations (averaged across instances).
	tomcat := (res.Utilization["tomcat-1"] + res.Utilization["tomcat-2"]) / 2
	mysql := (res.Utilization["mysql-1"] + res.Utilization["mysql-2"]) / 2
	apache := res.Utilization["apache"]
	cjdbc := res.Utilization["cjdbc"]
	if tomcat < 0.68 || tomcat > 0.92 {
		t.Errorf("tomcat util = %.3f, want ~0.80 (paper 79.9%%)", tomcat)
	}
	if mysql < 0.65 || mysql > 0.90 {
		t.Errorf("mysql util = %.3f, want ~0.78 (paper 78.1%%)", mysql)
	}
	if apache > 0.55 {
		t.Errorf("apache util = %.3f, want far from saturation (paper 34.6%%)", apache)
	}
	if cjdbc > 0.50 {
		t.Errorf("cjdbc util = %.3f, want far from saturation (paper 26.7%%)", cjdbc)
	}
	// Mean RT should be modest (system below saturation).
	rts := workload.ResponseTimesSeconds(res.Samples)
	if m := stats.Mean(rts); m > 0.8 {
		t.Errorf("mean RT = %.3fs, want below saturation regime", m)
	}
	t.Logf("WL8000: %.0f pages/s, util apache=%.2f tomcat=%.2f cjdbc=%.2f mysql=%.2f, meanRT=%.3fs",
		pages, apache, tomcat, cjdbc, mysql, stats.Mean(rts))
}
