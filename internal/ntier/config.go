// Package ntier assembles the full system under test: the paper's
// 1L/2S/1L/2S RUBBoS deployment (Fig 1) as a discrete-event simulation.
// One web server (Apache), two application servers (Tomcat), one
// clustering middleware (C-JDBC) and two database servers (MySQL), each a
// server.Server with its own multi-core cpu.Processor, driven by a
// closed-loop workload.Generator, with every inter-tier message captured
// by a trace.Collector.
//
// The two causal mechanisms of the paper's case studies are switchable:
//
//   - AppCollector selects the Tomcat JVM collector (JDK 1.5 serial vs
//     JDK 1.6 concurrent, §IV-A/B).
//   - DBSpeedStep enables the sluggish SpeedStep governor on the MySQL
//     hosts (§IV-C/D).
package ntier

import (
	"fmt"

	"transientbd/internal/cpu"
	"transientbd/internal/jvm"
	"transientbd/internal/simnet"
	"transientbd/internal/workload"
)

// Topology is the #W/#A/#C/#D server-count notation from §II-A.
type Topology struct {
	Web, App, Cluster, DB int
}

// Default1L2S1L2S returns the paper's sample topology.
func Default1L2S1L2S() Topology {
	return Topology{Web: 1, App: 2, Cluster: 1, DB: 2}
}

// String renders the paper's four-digit notation, e.g. "1L/2S/1L/2S".
func (t Topology) String() string {
	return fmt.Sprintf("%dL/%dS/%dL/%dS", t.Web, t.App, t.Cluster, t.DB)
}

// Config configures a System build.
type Config struct {
	// Users is the closed-loop population (the paper's workload number).
	// Required.
	Users int
	// Duration is the measured run length. Defaults to 3 minutes, the
	// paper's experiment length.
	Duration simnet.Duration
	// Ramp is the warm-up excluded from measurement. Defaults to 20 s.
	Ramp simnet.Duration
	// Seed makes the whole run reproducible.
	Seed int64

	// Topology defaults to 1L/2S/1L/2S.
	Topology Topology
	// CoresPerVM is the vCPU count pinned to each VM. Defaults to 2,
	// matching Fig 1's CPU0/CPU1 pinning.
	CoresPerVM int

	// DBSpeedStep enables the SpeedStep step-governor on the MySQL hosts;
	// when false the DB CPUs are pinned to P0 ("disabled in BIOS").
	DBSpeedStep bool
	// GovernorPeriod is the SpeedStep control period (BIOS sluggishness).
	// Defaults to 500 ms.
	GovernorPeriod simnet.Duration
	// GovernorUp and GovernorDown are the step-governor thresholds.
	// Defaults: 0.95 / 0.88 — an aggressive power-saving policy that
	// keeps the clock barely sufficient for the average demand, so any
	// burst lands on an under-clocked CPU (the Dell BIOS behaviour §IV-C
	// blames).
	GovernorUp, GovernorDown float64
	// DBGovernor, when non-nil, replaces the governor DBSpeedStep would
	// install (e.g. cpu.OndemandGovernor for the counterfactual "a
	// responsive algorithm fixes it" ablation).
	DBGovernor cpu.Governor

	// Antagonist, when non-nil, periodically steals CPU on one server —
	// a noisy-neighbor VM sharing the host, a third cause of transient
	// bottlenecks beyond GC and SpeedStep in the paper's consolidated-
	// cloud setting.
	Antagonist *AntagonistConfig

	// DBConnCap, when positive, bounds every cluster→DB connection pool
	// at that many connections per DB host (scenario: connection-pool
	// exhaustion). Queries beyond the cap queue inside the cluster tier
	// waiting for a free connection.
	DBConnCap int
	// ConnAcquireTimeout bounds how long a queued acquire waits on a
	// capped pool before failing fast (the query is abandoned and the
	// page continues). Zero means wait forever.
	ConnAcquireTimeout simnet.Duration

	// Convoy, when non-nil, serializes one server behind a critical
	// section with a periodic long hold (scenario: lock convoy).
	Convoy *ConvoyConfig

	// Stampede, when non-nil, puts a result cache in front of the app
	// tier's queries and periodically invalidates it (scenario: cache
	// stampede).
	Stampede *StampedeConfig

	// OpenLoop, when non-nil, replaces the closed-loop population with a
	// Poisson arrival process that does not slow down when the system
	// backs up (scenario: open-loop overload). Users is ignored.
	OpenLoop *OpenLoopConfig

	// Autoscale, when non-nil, adds a spare app server that joins the
	// rotation mid-run and serves slowly while it warms up (scenario:
	// post-autoscale slow-start).
	Autoscale *AutoscaleConfig

	// AppCollector selects the Tomcat collector; zero disables GC
	// entirely (no heap).
	AppCollector jvm.CollectorKind
	// AppHeapBytes is the Tomcat heap size. Defaults to 384 MB.
	AppHeapBytes int64

	// Workload shape.
	Mix       []workload.Interaction
	ThinkMean simnet.Duration
	Burst     workload.BurstConfig
	// NoiseSigma is lognormal service-time noise (σ of log). Defaults to
	// 0.08.
	NoiseSigma float64

	// Thread pools. Defaults: web 150 (+100 backlog), app 200, cluster
	// 400, DB 300.
	WebThreads, AppThreads, ClusterThreads, DBThreads int
	// WebAcceptBacklog bounds the web tier accept queue; overflowing it
	// costs a TCP retransmission (footnote 1 of the paper).
	WebAcceptBacklog int
	// RetransDelay is the TCP retransmission timeout. Defaults to 3 s.
	RetransDelay simnet.Duration
}

func (c *Config) applyDefaults() error {
	if c.Users <= 0 && c.OpenLoop == nil {
		return fmt.Errorf("ntier: users must be positive, got %d", c.Users)
	}
	if c.Duration <= 0 {
		c.Duration = 3 * simnet.Minute
	}
	if c.Ramp <= 0 {
		c.Ramp = 20 * simnet.Second
	}
	if c.Topology == (Topology{}) {
		c.Topology = Default1L2S1L2S()
	}
	if c.Topology.Web <= 0 || c.Topology.App <= 0 || c.Topology.Cluster <= 0 || c.Topology.DB <= 0 {
		return fmt.Errorf("ntier: topology %v has empty tiers", c.Topology)
	}
	if c.CoresPerVM <= 0 {
		c.CoresPerVM = 2
	}
	if c.GovernorPeriod <= 0 {
		c.GovernorPeriod = 500 * simnet.Millisecond
	}
	if c.GovernorUp <= 0 {
		c.GovernorUp = 0.95
	}
	if c.GovernorDown <= 0 {
		c.GovernorDown = 0.88
	}
	if c.AppHeapBytes <= 0 {
		c.AppHeapBytes = 384 * jvm.MB
	}
	if len(c.Mix) == 0 {
		c.Mix = workload.BrowseOnlyMix()
	}
	if c.ThinkMean <= 0 {
		c.ThinkMean = 8400 * simnet.Millisecond
	}
	if c.NoiseSigma < 0 {
		return fmt.Errorf("ntier: negative noise sigma %v", c.NoiseSigma)
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.08
	}
	if c.WebThreads <= 0 {
		c.WebThreads = 150
	}
	if c.AppThreads <= 0 {
		c.AppThreads = 200
	}
	if c.ClusterThreads <= 0 {
		c.ClusterThreads = 400
	}
	if c.DBThreads <= 0 {
		c.DBThreads = 300
	}
	if c.WebAcceptBacklog <= 0 {
		c.WebAcceptBacklog = 100
	}
	if c.RetransDelay <= 0 {
		c.RetransDelay = 3 * simnet.Second
	}
	if c.Antagonist != nil {
		if err := c.Antagonist.applyDefaults(); err != nil {
			return err
		}
		if err := c.validateServerName("antagonist target", c.Antagonist.Target); err != nil {
			return err
		}
	}
	if c.DBConnCap < 0 {
		return fmt.Errorf("ntier: negative DB connection cap %d", c.DBConnCap)
	}
	if c.ConnAcquireTimeout < 0 {
		return fmt.Errorf("ntier: negative connection acquire timeout")
	}
	if c.Convoy != nil {
		if err := c.Convoy.applyDefaults(); err != nil {
			return err
		}
		if err := c.validateServerName("convoy target", c.Convoy.Target); err != nil {
			return err
		}
	}
	if c.Stampede != nil {
		if err := c.Stampede.applyDefaults(); err != nil {
			return err
		}
	}
	if c.OpenLoop != nil {
		if err := c.OpenLoop.applyDefaults(); err != nil {
			return err
		}
	}
	if c.Autoscale != nil {
		if err := c.Autoscale.applyDefaults(c.Ramp, c.Duration); err != nil {
			return err
		}
	}
	return nil
}

// serverNames enumerates every server name the topology will produce,
// including the autoscale spare when configured.
func (c *Config) serverNames() []string {
	appCount := c.Topology.App
	if c.Autoscale != nil {
		appCount++
	}
	var names []string
	for i := 0; i < c.Topology.Web; i++ {
		names = append(names, tierName("apache", i, c.Topology.Web))
	}
	for i := 0; i < appCount; i++ {
		names = append(names, tierName("tomcat", i, appCount))
	}
	for i := 0; i < c.Topology.Cluster; i++ {
		names = append(names, tierName("cjdbc", i, c.Topology.Cluster))
	}
	for i := 0; i < c.Topology.DB; i++ {
		names = append(names, tierName("mysql", i, c.Topology.DB))
	}
	return names
}

// validateServerName rejects configuration that names a server the
// topology does not contain, listing the valid names in the error.
func (c *Config) validateServerName(what, name string) error {
	names := c.serverNames()
	for _, n := range names {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("ntier: %s %q is not in topology %v (servers: %v)", what, name, c.Topology, names)
}

// AntagonistConfig describes a periodic CPU hog co-located with one
// server.
type AntagonistConfig struct {
	// Target is the victim server's name (e.g. "mysql-1"). Required.
	Target string
	// Period is the interval between hog bursts. Defaults to 3 s.
	Period simnet.Duration
	// BurstLen is how long each burst occupies every core. Defaults to
	// 300 ms.
	BurstLen simnet.Duration
}

func (a *AntagonistConfig) applyDefaults() error {
	if a.Target == "" {
		return fmt.Errorf("ntier: antagonist needs a target server")
	}
	if a.Period <= 0 {
		a.Period = 3 * simnet.Second
	}
	if a.BurstLen <= 0 {
		a.BurstLen = 300 * simnet.Millisecond
	}
	if a.BurstLen >= a.Period {
		return fmt.Errorf("ntier: antagonist burst %v must be shorter than period %v",
			simnet.Std(a.BurstLen), simnet.Std(a.Period))
	}
	return nil
}

// ConvoyConfig serializes one server behind a FIFO critical section
// (think a coarse table lock or a synchronized log appender). Every
// request through the target acquires the lock for CritWork; a janitor
// grabs it for HoldLen every Period, parking the whole tier behind it.
type ConvoyConfig struct {
	// Target is the serialized server's name (e.g. "cjdbc"). Required.
	Target string
	// CritWork is the per-request lock hold. Defaults to 150 µs.
	CritWork simnet.Duration
	// Period is the interval between janitor holds. Defaults to 4 s.
	Period simnet.Duration
	// HoldLen is the janitor's hold length. Defaults to 400 ms.
	HoldLen simnet.Duration
}

func (c *ConvoyConfig) applyDefaults() error {
	if c.Target == "" {
		return fmt.Errorf("ntier: convoy needs a target server")
	}
	if c.CritWork <= 0 {
		c.CritWork = 150 * simnet.Microsecond
	}
	if c.Period <= 0 {
		c.Period = 4 * simnet.Second
	}
	if c.HoldLen <= 0 {
		c.HoldLen = 400 * simnet.Millisecond
	}
	if c.HoldLen >= c.Period {
		return fmt.Errorf("ntier: convoy hold %v must be shorter than period %v",
			simnet.Std(c.HoldLen), simnet.Std(c.Period))
	}
	return nil
}

// StampedeConfig puts a result cache in front of the app tier's queries.
// A hit costs HitWork on the app CPU and skips the downstream call; a
// miss goes downstream and refills one entry. Invalidation every Period
// empties the cache and sends the full query rate at the DB tier until
// it refills.
type StampedeConfig struct {
	// Period is the invalidation interval. Defaults to 15 s.
	Period simnet.Duration
	// HitRate is the warm-cache hit probability. Defaults to 0.75.
	HitRate float64
	// Entries is the number of cache entries when warm; the refill takes
	// Entries misses. Defaults to 8000.
	Entries int
	// HitWork is the app-tier CPU cost of a hit. Defaults to 60 µs.
	HitWork simnet.Duration
}

func (c *StampedeConfig) applyDefaults() error {
	if c.Period <= 0 {
		c.Period = 15 * simnet.Second
	}
	if c.HitRate == 0 {
		c.HitRate = 0.75
	}
	if c.HitRate < 0 || c.HitRate > 1 {
		return fmt.Errorf("ntier: stampede hit rate %v out of (0, 1]", c.HitRate)
	}
	if c.Entries <= 0 {
		c.Entries = 8000
	}
	if c.HitWork <= 0 {
		c.HitWork = 60 * simnet.Microsecond
	}
	return nil
}

// OpenLoopConfig replaces the closed-loop population with a Poisson
// arrival process: arrivals do not wait for previous pages to finish,
// so when demand exceeds capacity the queues grow without the closed
// loop's self-limiting feedback. Optional deterministic surges multiply
// the rate.
type OpenLoopConfig struct {
	// Rate is the baseline arrival rate in pages per second. Required.
	Rate float64
	// SurgeFactor multiplies Rate during surges. Values <= 1 disable
	// surges.
	SurgeFactor float64
	// SurgeEvery is the surge period; a surge starts at every multiple.
	SurgeEvery simnet.Duration
	// SurgeLen is how long each surge lasts.
	SurgeLen simnet.Duration
}

func (c *OpenLoopConfig) applyDefaults() error {
	if c.Rate <= 0 {
		return fmt.Errorf("ntier: open-loop arrival rate must be positive, got %v", c.Rate)
	}
	if c.SurgeFactor > 1 {
		if c.SurgeEvery <= 0 || c.SurgeLen <= 0 {
			return fmt.Errorf("ntier: open-loop surge needs SurgeEvery and SurgeLen")
		}
		if c.SurgeLen >= c.SurgeEvery {
			return fmt.Errorf("ntier: open-loop surge length %v must be shorter than its period %v",
				simnet.Std(c.SurgeLen), simnet.Std(c.SurgeEvery))
		}
	}
	return nil
}

// AutoscaleConfig adds one spare app server that joins the round-robin
// rotation at time At and serves SlowFactor× slower at first, decaying
// linearly to full speed over Warmup — a cold JIT/cache/pool on a fresh
// instance.
type AutoscaleConfig struct {
	// Tier selects the scaled tier. Only "app" is supported today.
	Tier string
	// At is the absolute sim time the spare joins. Defaults to
	// ramp + duration/3.
	At simnet.Time
	// Warmup is how long the spare takes to reach full speed. Defaults
	// to duration/6.
	Warmup simnet.Duration
	// SlowFactor is the initial service-time multiplier. Defaults to 3.
	SlowFactor float64
}

func (c *AutoscaleConfig) applyDefaults(ramp, duration simnet.Duration) error {
	if c.Tier == "" {
		c.Tier = "app"
	}
	if c.Tier != "app" {
		return fmt.Errorf("ntier: autoscale tier %q not supported (only \"app\")", c.Tier)
	}
	if c.At <= 0 {
		c.At = simnet.Time(ramp + duration/3)
	}
	if c.Warmup <= 0 {
		c.Warmup = duration / 6
	}
	if c.SlowFactor == 0 {
		c.SlowFactor = 3
	}
	if c.SlowFactor < 1 {
		return fmt.Errorf("ntier: autoscale slow factor %v must be >= 1", c.SlowFactor)
	}
	return nil
}

// DefaultBurst returns the burst modulation used by the paper-shaped
// experiments: correlated surges that multiply instantaneous demand by
// 2.5× for about a second, every several seconds.
func DefaultBurst() workload.BurstConfig {
	return workload.BurstConfig{
		Factor:  2.5,
		OnMean:  1200 * simnet.Millisecond,
		OffMean: 6 * simnet.Second,
	}
}

// newDBGovernor builds the governor for a DB host processor.
func (c *Config) newDBGovernor() cpu.Governor {
	if c.DBGovernor != nil {
		return c.DBGovernor
	}
	if c.DBSpeedStep {
		return cpu.StepGovernor{UpThreshold: c.GovernorUp, DownThreshold: c.GovernorDown}
	}
	return cpu.FixedGovernor{State: 0}
}
