// Package ntier assembles the full system under test: the paper's
// 1L/2S/1L/2S RUBBoS deployment (Fig 1) as a discrete-event simulation.
// One web server (Apache), two application servers (Tomcat), one
// clustering middleware (C-JDBC) and two database servers (MySQL), each a
// server.Server with its own multi-core cpu.Processor, driven by a
// closed-loop workload.Generator, with every inter-tier message captured
// by a trace.Collector.
//
// The two causal mechanisms of the paper's case studies are switchable:
//
//   - AppCollector selects the Tomcat JVM collector (JDK 1.5 serial vs
//     JDK 1.6 concurrent, §IV-A/B).
//   - DBSpeedStep enables the sluggish SpeedStep governor on the MySQL
//     hosts (§IV-C/D).
package ntier

import (
	"fmt"

	"transientbd/internal/cpu"
	"transientbd/internal/jvm"
	"transientbd/internal/simnet"
	"transientbd/internal/workload"
)

// Topology is the #W/#A/#C/#D server-count notation from §II-A.
type Topology struct {
	Web, App, Cluster, DB int
}

// Default1L2S1L2S returns the paper's sample topology.
func Default1L2S1L2S() Topology {
	return Topology{Web: 1, App: 2, Cluster: 1, DB: 2}
}

// String renders the paper's four-digit notation, e.g. "1L/2S/1L/2S".
func (t Topology) String() string {
	return fmt.Sprintf("%dL/%dS/%dL/%dS", t.Web, t.App, t.Cluster, t.DB)
}

// Config configures a System build.
type Config struct {
	// Users is the closed-loop population (the paper's workload number).
	// Required.
	Users int
	// Duration is the measured run length. Defaults to 3 minutes, the
	// paper's experiment length.
	Duration simnet.Duration
	// Ramp is the warm-up excluded from measurement. Defaults to 20 s.
	Ramp simnet.Duration
	// Seed makes the whole run reproducible.
	Seed int64

	// Topology defaults to 1L/2S/1L/2S.
	Topology Topology
	// CoresPerVM is the vCPU count pinned to each VM. Defaults to 2,
	// matching Fig 1's CPU0/CPU1 pinning.
	CoresPerVM int

	// DBSpeedStep enables the SpeedStep step-governor on the MySQL hosts;
	// when false the DB CPUs are pinned to P0 ("disabled in BIOS").
	DBSpeedStep bool
	// GovernorPeriod is the SpeedStep control period (BIOS sluggishness).
	// Defaults to 500 ms.
	GovernorPeriod simnet.Duration
	// GovernorUp and GovernorDown are the step-governor thresholds.
	// Defaults: 0.95 / 0.88 — an aggressive power-saving policy that
	// keeps the clock barely sufficient for the average demand, so any
	// burst lands on an under-clocked CPU (the Dell BIOS behaviour §IV-C
	// blames).
	GovernorUp, GovernorDown float64
	// DBGovernor, when non-nil, replaces the governor DBSpeedStep would
	// install (e.g. cpu.OndemandGovernor for the counterfactual "a
	// responsive algorithm fixes it" ablation).
	DBGovernor cpu.Governor

	// Antagonist, when non-nil, periodically steals CPU on one server —
	// a noisy-neighbor VM sharing the host, a third cause of transient
	// bottlenecks beyond GC and SpeedStep in the paper's consolidated-
	// cloud setting.
	Antagonist *AntagonistConfig

	// AppCollector selects the Tomcat collector; zero disables GC
	// entirely (no heap).
	AppCollector jvm.CollectorKind
	// AppHeapBytes is the Tomcat heap size. Defaults to 384 MB.
	AppHeapBytes int64

	// Workload shape.
	Mix       []workload.Interaction
	ThinkMean simnet.Duration
	Burst     workload.BurstConfig
	// NoiseSigma is lognormal service-time noise (σ of log). Defaults to
	// 0.08.
	NoiseSigma float64

	// Thread pools. Defaults: web 150 (+100 backlog), app 200, cluster
	// 400, DB 300.
	WebThreads, AppThreads, ClusterThreads, DBThreads int
	// WebAcceptBacklog bounds the web tier accept queue; overflowing it
	// costs a TCP retransmission (footnote 1 of the paper).
	WebAcceptBacklog int
	// RetransDelay is the TCP retransmission timeout. Defaults to 3 s.
	RetransDelay simnet.Duration
}

func (c *Config) applyDefaults() error {
	if c.Users <= 0 {
		return fmt.Errorf("ntier: users must be positive, got %d", c.Users)
	}
	if c.Duration <= 0 {
		c.Duration = 3 * simnet.Minute
	}
	if c.Ramp <= 0 {
		c.Ramp = 20 * simnet.Second
	}
	if c.Topology == (Topology{}) {
		c.Topology = Default1L2S1L2S()
	}
	if c.Topology.Web <= 0 || c.Topology.App <= 0 || c.Topology.Cluster <= 0 || c.Topology.DB <= 0 {
		return fmt.Errorf("ntier: topology %v has empty tiers", c.Topology)
	}
	if c.CoresPerVM <= 0 {
		c.CoresPerVM = 2
	}
	if c.GovernorPeriod <= 0 {
		c.GovernorPeriod = 500 * simnet.Millisecond
	}
	if c.GovernorUp <= 0 {
		c.GovernorUp = 0.95
	}
	if c.GovernorDown <= 0 {
		c.GovernorDown = 0.88
	}
	if c.AppHeapBytes <= 0 {
		c.AppHeapBytes = 384 * jvm.MB
	}
	if len(c.Mix) == 0 {
		c.Mix = workload.BrowseOnlyMix()
	}
	if c.ThinkMean <= 0 {
		c.ThinkMean = 8400 * simnet.Millisecond
	}
	if c.NoiseSigma < 0 {
		return fmt.Errorf("ntier: negative noise sigma %v", c.NoiseSigma)
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.08
	}
	if c.WebThreads <= 0 {
		c.WebThreads = 150
	}
	if c.AppThreads <= 0 {
		c.AppThreads = 200
	}
	if c.ClusterThreads <= 0 {
		c.ClusterThreads = 400
	}
	if c.DBThreads <= 0 {
		c.DBThreads = 300
	}
	if c.WebAcceptBacklog <= 0 {
		c.WebAcceptBacklog = 100
	}
	if c.RetransDelay <= 0 {
		c.RetransDelay = 3 * simnet.Second
	}
	if c.Antagonist != nil {
		if err := c.Antagonist.applyDefaults(); err != nil {
			return err
		}
	}
	return nil
}

// AntagonistConfig describes a periodic CPU hog co-located with one
// server.
type AntagonistConfig struct {
	// Target is the victim server's name (e.g. "mysql-1"). Required.
	Target string
	// Period is the interval between hog bursts. Defaults to 3 s.
	Period simnet.Duration
	// BurstLen is how long each burst occupies every core. Defaults to
	// 300 ms.
	BurstLen simnet.Duration
}

func (a *AntagonistConfig) applyDefaults() error {
	if a.Target == "" {
		return fmt.Errorf("ntier: antagonist needs a target server")
	}
	if a.Period <= 0 {
		a.Period = 3 * simnet.Second
	}
	if a.BurstLen <= 0 {
		a.BurstLen = 300 * simnet.Millisecond
	}
	if a.BurstLen >= a.Period {
		return fmt.Errorf("ntier: antagonist burst %v must be shorter than period %v",
			simnet.Std(a.BurstLen), simnet.Std(a.Period))
	}
	return nil
}

// DefaultBurst returns the burst modulation used by the paper-shaped
// experiments: correlated surges that multiply instantaneous demand by
// 2.5× for about a second, every several seconds.
func DefaultBurst() workload.BurstConfig {
	return workload.BurstConfig{
		Factor:  2.5,
		OnMean:  1200 * simnet.Millisecond,
		OffMean: 6 * simnet.Second,
	}
}

// newDBGovernor builds the governor for a DB host processor.
func (c *Config) newDBGovernor() cpu.Governor {
	if c.DBGovernor != nil {
		return c.DBGovernor
	}
	if c.DBSpeedStep {
		return cpu.StepGovernor{UpThreshold: c.GovernorUp, DownThreshold: c.GovernorDown}
	}
	return cpu.FixedGovernor{State: 0}
}
