package ntier

import (
	"fmt"

	"transientbd/internal/cpu"
	"transientbd/internal/jvm"
	"transientbd/internal/server"
	"transientbd/internal/simnet"
	"transientbd/internal/trace"
	"transientbd/internal/workload"
)

// Wire sizes used for Table I style network accounting. They approximate
// the RUBBoS message sizes: small requests downstream, pages and result
// sets upstream.
const (
	clientReqBytes = 500
	webToAppBytes  = 400
	appRespBytes   = 6 * 1024
	appToClBytes   = 300
	clRespBytes    = 1536
	clToDBBytes    = 300
)

// System is a fully wired n-tier deployment ready to run.
type System struct {
	cfg       Config
	engine    *simnet.Engine
	collector *trace.Collector
	gen       *workload.Generator

	web     []*server.Server
	app     []*server.Server
	cluster []*server.Server
	db      []*server.Server

	appHeaps []*jvm.Heap

	rngNoise *simnet.RNG
	conns    *connPool
	rrApp    int
	rrDB     int
	rrCl     int
	rrWeb    int

	// Scenario state + ground-truth accounting.
	appActive     int // app servers in rotation (autoscale adds one mid-run)
	convoy        *serialLock
	convoyWindows []TruthWindow
	cache         *queryCache
	hogWindows    []TruthWindow
}

// Build constructs the system from cfg.
func Build(cfg Config) (*System, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	engine := simnet.NewEngine()
	collector := trace.NewCollector()
	root := simnet.NewRNG(cfg.Seed)

	s := &System{
		cfg:       cfg,
		engine:    engine,
		collector: collector,
		rngNoise:  root.Split("noise"),
		conns:     newConnPool(engine, cfg.ConnAcquireTimeout),
	}

	mkProc := func(gov cpu.Governor, period simnet.Duration) (*cpu.Processor, error) {
		return cpu.NewProcessor(engine, cpu.Config{
			Cores:         cfg.CoresPerVM,
			Governor:      gov,
			ControlPeriod: period,
			InitialState:  len(cpu.TableII()) - 1, // power-saving start
		})
	}

	// Web tier (Apache): fixed P0, retransmission-capable accept queue.
	for i := 0; i < cfg.Topology.Web; i++ {
		proc, err := mkProc(cpu.FixedGovernor{State: 0}, 0)
		if err != nil {
			return nil, fmt.Errorf("ntier: web processor: %w", err)
		}
		srv, err := server.New(engine, proc, nil, collector, server.Config{
			Name:          tierName("apache", i, cfg.Topology.Web),
			Threads:       cfg.WebThreads,
			AcceptBacklog: cfg.WebAcceptBacklog,
			RetransDelay:  cfg.RetransDelay,
		})
		if err != nil {
			return nil, fmt.Errorf("ntier: web server: %w", err)
		}
		s.web = append(s.web, srv)
	}

	// App tier (Tomcat): optional JVM heap with the configured collector.
	// An autoscale scenario builds one spare that joins the rotation
	// mid-run.
	appCount := cfg.Topology.App
	if cfg.Autoscale != nil {
		appCount++
	}
	for i := 0; i < appCount; i++ {
		proc, err := mkProc(cpu.FixedGovernor{State: 0}, 0)
		if err != nil {
			return nil, fmt.Errorf("ntier: app processor: %w", err)
		}
		var heap *jvm.Heap
		if cfg.AppCollector != 0 {
			heap, err = jvm.NewHeap(engine, proc, jvm.Config{
				Kind:      cfg.AppCollector,
				HeapBytes: cfg.AppHeapBytes,
			})
			if err != nil {
				return nil, fmt.Errorf("ntier: app heap: %w", err)
			}
			s.appHeaps = append(s.appHeaps, heap)
		}
		srv, err := server.New(engine, proc, heap, collector, server.Config{
			Name:    tierName("tomcat", i, appCount),
			Threads: cfg.AppThreads,
		})
		if err != nil {
			return nil, fmt.Errorf("ntier: app server: %w", err)
		}
		s.app = append(s.app, srv)
	}
	s.appActive = cfg.Topology.App
	if cfg.Autoscale != nil {
		engine.At(cfg.Autoscale.At, func() { s.appActive = appCount })
	}

	// Cluster middleware (C-JDBC).
	for i := 0; i < cfg.Topology.Cluster; i++ {
		proc, err := mkProc(cpu.FixedGovernor{State: 0}, 0)
		if err != nil {
			return nil, fmt.Errorf("ntier: cluster processor: %w", err)
		}
		srv, err := server.New(engine, proc, nil, collector, server.Config{
			Name:    tierName("cjdbc", i, cfg.Topology.Cluster),
			Threads: cfg.ClusterThreads,
		})
		if err != nil {
			return nil, fmt.Errorf("ntier: cluster server: %w", err)
		}
		s.cluster = append(s.cluster, srv)
	}

	// DB tier (MySQL): SpeedStep governor per config.
	for i := 0; i < cfg.Topology.DB; i++ {
		proc, err := mkProc(cfg.newDBGovernor(), cfg.GovernorPeriod)
		if err != nil {
			return nil, fmt.Errorf("ntier: db processor: %w", err)
		}
		proc.Start()
		srv, err := server.New(engine, proc, nil, collector, server.Config{
			Name:    tierName("mysql", i, cfg.Topology.DB),
			Threads: cfg.DBThreads,
		})
		if err != nil {
			return nil, fmt.Errorf("ntier: db server: %w", err)
		}
		s.db = append(s.db, srv)
	}

	if cfg.DBConnCap > 0 {
		for _, cl := range s.cluster {
			for _, db := range s.db {
				s.conns.setCap(cl.Name(), db.Name(), cfg.DBConnCap)
			}
		}
	}

	if cfg.Convoy != nil {
		s.convoy = newSerialLock(engine)
		spec := *cfg.Convoy
		var holdStart simnet.Time
		var janitor func()
		janitor = func() {
			s.convoy.with(spec.HoldLen,
				func() { holdStart = engine.Now() },
				func() {
					s.convoyWindows = append(s.convoyWindows, TruthWindow{Start: holdStart, End: engine.Now()})
				})
			engine.Schedule(spec.Period, janitor)
		}
		engine.Schedule(spec.Period, janitor)
	}

	if cfg.Stampede != nil {
		s.cache = newQueryCache(root.Split("cache"), cfg.Stampede.HitRate, cfg.Stampede.Entries)
		period := cfg.Stampede.Period
		var invalidate func()
		invalidate = func() {
			s.cache.invalidate(engine.Now())
			engine.Schedule(period, invalidate)
		}
		engine.Schedule(period, invalidate)
	}

	if cfg.Antagonist != nil {
		var victim *server.Server
		for _, srv := range s.AllServers() {
			if srv.Name() == cfg.Antagonist.Target {
				victim = srv
				break
			}
		}
		if victim == nil {
			return nil, fmt.Errorf("ntier: antagonist target %q not in topology", cfg.Antagonist.Target)
		}
		proc := victim.Processor()
		spec := *cfg.Antagonist
		var hog func()
		hog = func() {
			// Occupy every core for the burst length; the hog competes
			// FCFS with application requests, exactly like a co-located
			// VM stealing the physical cores.
			now := engine.Now()
			s.hogWindows = append(s.hogWindows, TruthWindow{Start: now, End: now + spec.BurstLen})
			for c := 0; c < proc.Cores(); c++ {
				proc.Submit(spec.BurstLen, nil)
			}
			engine.Schedule(spec.Period, hog)
		}
		engine.Schedule(spec.Period, hog)
	}

	var openLoop *workload.OpenLoopConfig
	if cfg.OpenLoop != nil {
		openLoop = &workload.OpenLoopConfig{
			Rate:        cfg.OpenLoop.Rate,
			SurgeFactor: cfg.OpenLoop.SurgeFactor,
			SurgeEvery:  cfg.OpenLoop.SurgeEvery,
			SurgeLen:    cfg.OpenLoop.SurgeLen,
		}
	}
	gen, err := workload.NewGenerator(engine, root.Split("workload"), workload.Config{
		Users:      cfg.Users,
		ThinkMean:  cfg.ThinkMean,
		Burst:      cfg.Burst,
		Mix:        cfg.Mix,
		Submit:     s.submit,
		RecordFrom: cfg.Ramp,
		OpenLoop:   openLoop,
	})
	if err != nil {
		return nil, fmt.Errorf("ntier: generator: %w", err)
	}
	s.gen = gen
	return s, nil
}

func tierName(base string, idx, count int) string {
	if count == 1 {
		return base
	}
	return fmt.Sprintf("%s-%d", base, idx+1)
}

// noisy applies lognormal service-time noise to a nominal demand.
func (s *System) noisy(d simnet.Duration) simnet.Duration {
	return simnet.Duration(float64(d) * s.rngNoise.LogNormal(s.cfg.NoiseSigma))
}

// withConvoy prepends the critical-section phase when name is the convoy
// target: the request holds the serial lock (off-CPU, FIFO) before its
// normal processing.
func (s *System) withConvoy(name string, phases []server.Phase) []server.Phase {
	if s.convoy == nil || name != s.cfg.Convoy.Target {
		return phases
	}
	hold := s.noisy(s.cfg.Convoy.CritWork)
	lock := server.Downstream{Do: func(done func()) {
		s.convoy.with(hold, nil, done)
	}}
	return append([]server.Phase{lock}, phases...)
}

// slowdown returns the autoscale warm-up service-time multiplier for an
// app server (1 for everything except the spare during its warm-up).
func (s *System) slowdown(appIdx int) float64 {
	a := s.cfg.Autoscale
	if a == nil || appIdx != len(s.app)-1 {
		return 1
	}
	now := s.engine.Now()
	if now >= a.At+a.Warmup {
		return 1
	}
	progress := float64(now-a.At) / float64(a.Warmup)
	if progress < 0 {
		progress = 0
	}
	return a.SlowFactor - (a.SlowFactor-1)*progress
}

// submit dispatches one client transaction into the web tier.
func (s *System) submit(ix *workload.Interaction, txn int64, done func()) {
	web := s.web[s.rrWeb%len(s.web)]
	s.rrWeb++
	s.conns.acquire("client", web.Name(), func(conn int64, ok bool) {
		if !ok {
			done()
			return
		}
		hop := s.collector.NextHopID()
		webWork := s.noisy(ix.WebWork)
		req := &server.Request{
			Class:     ix.Name,
			TxnID:     txn,
			HopID:     hop,
			ParentHop: 0,
			From:      "client",
			Conn:      conn,
			ReqBytes:  clientReqBytes,
			RespBytes: ix.PageBytes,
			Phases: s.withConvoy(web.Name(), []server.Phase{
				server.Compute{Work: webWork / 2},
				server.Downstream{Do: func(appDone func()) {
					s.callApp(ix, txn, hop, web.Name(), appDone)
				}},
				server.Compute{Work: webWork - webWork/2},
			}),
			OnDone: func() {
				s.conns.release("client", web.Name(), conn)
				done()
			},
		}
		// Receive only fails on malformed requests, which construction
		// rules out; a failure here is a programming error worth surfacing
		// loudly.
		if err := web.Receive(req); err != nil {
			panic(fmt.Sprintf("ntier: web receive: %v", err))
		}
	})
}

// callApp dispatches the app-tier portion of a transaction.
func (s *System) callApp(ix *workload.Interaction, txn, parentHop int64, from string, done func()) {
	appIdx := s.rrApp % s.appActive
	app := s.app[appIdx]
	s.rrApp++
	s.conns.acquire(from, app.Name(), func(conn int64, ok bool) {
		if !ok {
			done()
			return
		}
		hop := s.collector.NextHopID()
		// A warming autoscale spare serves every app-side phase slower.
		slow := s.slowdown(appIdx)
		appWork := func(d simnet.Duration) simnet.Duration {
			return simnet.Duration(float64(s.noisy(d)) * slow)
		}

		phases := make([]server.Phase, 0, 2*len(ix.Queries)+2)
		phases = append(phases, server.Compute{Work: appWork(ix.AppPreWork)})
		for qi := range ix.Queries {
			q := ix.Queries[qi]
			if s.cache != nil && s.cache.lookup(s.engine.Now()) {
				// Cache hit: the result is served from the app tier; no
				// downstream call.
				phases = append(phases, server.Compute{Work: appWork(s.cfg.Stampede.HitWork)})
				continue
			}
			phases = append(phases, server.Downstream{Do: func(qDone func()) {
				s.callCluster(ix, q, txn, hop, app.Name(), qDone)
			}})
			phases = append(phases, server.Compute{Work: appWork(ix.AppPerQueryWork)})
		}
		phases = append(phases, server.Compute{Work: appWork(ix.AppPostWork)})

		req := &server.Request{
			Class:      ix.Name,
			TxnID:      txn,
			HopID:      hop,
			ParentHop:  parentHop,
			From:       from,
			Conn:       conn,
			ReqBytes:   webToAppBytes,
			RespBytes:  appRespBytes,
			AllocBytes: ix.AllocBytes,
			Phases:     s.withConvoy(app.Name(), phases),
			OnDone: func() {
				s.conns.release(from, app.Name(), conn)
				done()
			},
		}
		if err := app.Receive(req); err != nil {
			panic(fmt.Sprintf("ntier: app receive: %v", err))
		}
	})
}

// callCluster dispatches one query through the clustering middleware.
func (s *System) callCluster(ix *workload.Interaction, q workload.Query, txn, parentHop int64, from string, done func()) {
	cl := s.cluster[s.rrCl%len(s.cluster)]
	s.rrCl++
	s.conns.acquire(from, cl.Name(), func(conn int64, ok bool) {
		if !ok {
			done()
			return
		}
		hop := s.collector.NextHopID()
		clWork := s.noisy(ix.ClusterPerQueryWork)
		req := &server.Request{
			Class:     q.Template,
			TxnID:     txn,
			HopID:     hop,
			ParentHop: parentHop,
			From:      from,
			Conn:      conn,
			ReqBytes:  appToClBytes,
			RespBytes: clRespBytes,
			Phases: s.withConvoy(cl.Name(), []server.Phase{
				server.Compute{Work: clWork * 2 / 3},
				server.Downstream{Do: func(dbDone func()) {
					s.callDB(q, txn, hop, cl.Name(), dbDone)
				}},
				server.Compute{Work: clWork / 3},
			}),
			OnDone: func() {
				s.conns.release(from, cl.Name(), conn)
				done()
			},
		}
		if err := cl.Receive(req); err != nil {
			panic(fmt.Sprintf("ntier: cluster receive: %v", err))
		}
	})
}

// callDB dispatches one query to a database server (round-robin, as
// C-JDBC balances read-only queries).
func (s *System) callDB(q workload.Query, txn, parentHop int64, from string, done func()) {
	db := s.db[s.rrDB%len(s.db)]
	s.rrDB++
	// On a capped pool this acquire may park the calling thread (it stays
	// inside the cluster tier's Downstream phase) until a connection
	// frees, or fail after the pool timeout, in which case the query is
	// abandoned and the page continues.
	s.conns.acquire(from, db.Name(), func(conn int64, ok bool) {
		if !ok {
			done()
			return
		}
		hop := s.collector.NextHopID()
		phases := []server.Phase{
			server.Compute{Work: s.noisy(q.Work)},
		}
		if q.WriteBytes > 0 {
			// Writes flush to the database disk before responding.
			phases = append(phases, server.DiskIO{Bytes: q.WriteBytes})
		}
		req := &server.Request{
			Class:     q.Template,
			TxnID:     txn,
			HopID:     hop,
			ParentHop: parentHop,
			From:      from,
			Conn:      conn,
			ReqBytes:  clToDBBytes,
			RespBytes: q.RespBytes,
			Phases:    s.withConvoy(db.Name(), phases),
			OnDone: func() {
				s.conns.release(from, db.Name(), conn)
				done()
			},
		}
		if err := db.Receive(req); err != nil {
			panic(fmt.Sprintf("ntier: db receive: %v", err))
		}
	})
}

// Engine returns the simulation engine.
func (s *System) Engine() *simnet.Engine { return s.engine }

// Collector returns the wire-trace collector.
func (s *System) Collector() *trace.Collector { return s.collector }

// Generator returns the workload generator.
func (s *System) Generator() *workload.Generator { return s.gen }

// Config returns the effective (defaulted) configuration.
func (s *System) Config() Config { return s.cfg }

// WebServers, AppServers, ClusterServers, DBServers return the tier
// members in index order.
func (s *System) WebServers() []*server.Server     { return s.web }
func (s *System) AppServers() []*server.Server     { return s.app }
func (s *System) ClusterServers() []*server.Server { return s.cluster }
func (s *System) DBServers() []*server.Server      { return s.db }

// AppHeaps returns the app-tier JVM heaps (empty when GC is disabled).
func (s *System) AppHeaps() []*jvm.Heap { return s.appHeaps }

// AllServers returns every server, web tier first.
func (s *System) AllServers() []*server.Server {
	out := make([]*server.Server, 0, len(s.web)+len(s.app)+len(s.cluster)+len(s.db))
	out = append(out, s.web...)
	out = append(out, s.app...)
	out = append(out, s.cluster...)
	out = append(out, s.db...)
	return out
}

// MeasuredWindow returns the [start, end) window covered by Result data.
func (s *System) MeasuredWindow() (start, end simnet.Time) {
	return s.cfg.Ramp, s.cfg.Ramp + s.cfg.Duration
}

// Result is the harvest of one run.
type Result struct {
	// Window is the measured [start, end).
	WindowStart, WindowEnd simnet.Time
	// Samples are end-to-end RTs for transactions issued in the window.
	Samples []workload.RTSample
	// Visits are per-server request records assembled from the wire trace
	// (whole run, including ramp; filter by time when needed).
	Visits []trace.Visit
	// Messages is the raw wire capture.
	Messages []trace.Message
	// Utilization is each server's average CPU utilization (0..1) over
	// the measured window.
	Utilization map[string]float64
	// GroundTruth carries one machine-readable injection record per
	// configured bottleneck mechanism, windows clipped to the measured
	// window. Empty when no scenario mechanism is configured.
	GroundTruth []GroundTruth
	// PoolTimeouts counts connection acquires abandoned at the pool
	// timeout, per destination server (only populated with a capped
	// pool and ConnAcquireTimeout set).
	PoolTimeouts map[string]int64
}

// Run drives the system for ramp + duration and harvests results.
func (s *System) Run() (*Result, error) {
	s.gen.Start()
	horizon := s.cfg.Ramp + s.cfg.Duration

	// Snapshot busy counters at the end of ramp-up so utilization covers
	// only the measured window.
	busyAtRamp := make(map[string]float64, len(s.AllServers()))
	s.engine.At(s.cfg.Ramp, func() {
		for _, srv := range s.AllServers() {
			busyAtRamp[srv.Name()] = srv.Processor().BusyCoreMicros()
		}
	})

	if err := s.engine.Run(horizon); err != nil {
		return nil, fmt.Errorf("ntier: run: %w", err)
	}

	util := make(map[string]float64, len(s.AllServers()))
	for _, srv := range s.AllServers() {
		util[srv.Name()] = srv.Processor().Utilization(busyAtRamp[srv.Name()], s.cfg.Ramp)
	}
	msgs := s.collector.Messages()
	visits, err := trace.Assemble(msgs)
	if err != nil {
		return nil, fmt.Errorf("ntier: assemble trace: %w", err)
	}
	start, end := s.MeasuredWindow()
	return &Result{
		WindowStart: start,
		WindowEnd:   end,
		Samples:     s.gen.Samples(),
		Visits:      visits,
		Messages:    msgs,
		Utilization: util,
		GroundTruth: s.groundTruth(),
		PoolTimeouts: func() map[string]int64 {
			out := make(map[string]int64)
			for _, db := range s.db {
				if n := s.conns.timeoutsFor(db.Name()); n > 0 {
					out[db.Name()] = n
				}
			}
			return out
		}(),
	}, nil
}

// groundTruth assembles the machine-readable injection records for every
// configured scenario mechanism, clipped to the measured window.
func (s *System) groundTruth() []GroundTruth {
	start, end := s.MeasuredWindow()
	now := s.engine.Now()
	var out []GroundTruth

	if s.cfg.DBConnCap > 0 {
		// One record per DB host: their wait windows differ. The cluster
		// tier holding the exhausted pools is part of the blast site — the
		// cap acts on its outbound edge, and callers observe the clip
		// there — so it is included in every record's server set.
		var callers []string
		for _, cl := range s.cluster {
			callers = append(callers, cl.Name())
		}
		for _, db := range s.db {
			out = append(out, GroundTruth{
				Cause:   CausePoolExhaustion,
				Servers: append([]string{db.Name()}, callers...),
				Windows: clipWindows(s.conns.waitWindowsFor(db.Name(), now), start, end),
			})
		}
	}
	if s.cfg.Convoy != nil {
		out = append(out, GroundTruth{
			Cause:   CauseLockConvoy,
			Servers: []string{s.cfg.Convoy.Target},
			Windows: clipWindows(s.convoyWindows, start, end),
		})
	}
	if s.cfg.Stampede != nil {
		var dbs []string
		for _, db := range s.db {
			dbs = append(dbs, db.Name())
		}
		out = append(out, GroundTruth{
			Cause:   CauseCacheStampede,
			Servers: dbs,
			Windows: clipWindows(s.cache.windows(now), start, end),
		})
	}
	if s.cfg.Antagonist != nil {
		out = append(out, GroundTruth{
			Cause:   CauseNoisyNeighbor,
			Servers: []string{s.cfg.Antagonist.Target},
			Windows: clipWindows(s.hogWindows, start, end),
		})
	}
	if ol := s.cfg.OpenLoop; ol != nil {
		var apps []string
		for i := 0; i < s.appActive; i++ {
			apps = append(apps, s.app[i].Name())
		}
		var ws []TruthWindow
		if ol.SurgeFactor > 1 {
			for k := simnet.Duration(1); k*ol.SurgeEvery < end; k++ {
				ws = append(ws, TruthWindow{
					Start: k * ol.SurgeEvery,
					End:   k*ol.SurgeEvery + ol.SurgeLen,
				})
			}
		} else {
			// Constant overload: the whole window is the injection.
			ws = []TruthWindow{{Start: start, End: end}}
		}
		out = append(out, GroundTruth{
			Cause:   CauseOverload,
			Servers: apps,
			Windows: clipWindows(ws, start, end),
		})
	}
	if a := s.cfg.Autoscale; a != nil {
		spare := s.app[len(s.app)-1]
		out = append(out, GroundTruth{
			Cause:   CauseSlowStart,
			Servers: []string{spare.Name()},
			Windows: clipWindows([]TruthWindow{{Start: a.At, End: a.At + a.Warmup}}, start, end),
		})
	}
	return out
}

// PagesPerSecond returns the measured page throughput of a result.
func (r *Result) PagesPerSecond() float64 {
	span := (r.WindowEnd - r.WindowStart).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(len(r.Samples)) / span
}
