package ntier

import (
	"fmt"
	"sort"

	"transientbd/internal/simnet"
	"transientbd/internal/workload"
)

// scenarioPreset builds the canonical Config for one battery scenario.
// Each preset is tuned against the calibrated BrowseOnly capacities
// (app tier ≈1340 pages/s, DB tier ≈2530 q/s per host at the default
// query work) so the injected mechanism — and only it — drives the
// transient congestion.
type scenarioPreset struct {
	cause CauseKind
	desc  string
	build func(seed int64, duration, ramp simnet.Duration) Config
}

var scenarioPresets = map[string]scenarioPreset{
	"conn-pool": {
		cause: CausePoolExhaustion,
		desc:  "cluster→DB connection pools capped; demand exceeds pooled capacity",
		build: func(seed int64, duration, ramp simnet.Duration) Config {
			return Config{
				Users:    9500,
				Duration: duration,
				Ramp:     ramp,
				Seed:     seed,
				// Heavier queries move the natural bottleneck to the DB
				// tier so the cap binds before the app CPUs do.
				Mix:       workload.ScaleQueryWork(workload.BrowseOnlyMix(), 1.5),
				DBConnCap: 6,
			}
		},
	},
	"lock-convoy": {
		cause: CauseLockConvoy,
		desc:  "C-JDBC serialized behind a critical section with a periodic long hold",
		build: func(seed int64, duration, ramp simnet.Duration) Config {
			return Config{
				Users:    8000,
				Duration: duration,
				Ramp:     ramp,
				Seed:     seed,
				Convoy:   &ConvoyConfig{Target: "cjdbc"},
			}
		},
	},
	"cache-stampede": {
		cause: CauseCacheStampede,
		desc:  "app-tier result cache invalidated periodically; miss storms hit the DBs",
		build: func(seed int64, duration, ramp simnet.Duration) Config {
			period := duration / 12
			if period < 6*simnet.Second {
				period = 6 * simnet.Second
			}
			if period > 15*simnet.Second {
				period = 15 * simnet.Second
			}
			return Config{
				Users:    10000,
				Duration: duration,
				Ramp:     ramp,
				Seed:     seed,
				Mix:      workload.ScaleQueryWork(workload.BrowseOnlyMix(), 1.6),
				Stampede: &StampedeConfig{Period: period},
			}
		},
	},
	"noisy-neighbor": {
		cause: CauseNoisyNeighbor,
		desc:  "co-located tenant steals every core of mysql-1 for 300 ms every 3 s",
		build: func(seed int64, duration, ramp simnet.Duration) Config {
			return Config{
				Users:      7000,
				Duration:   duration,
				Ramp:       ramp,
				Seed:       seed,
				Antagonist: &AntagonistConfig{Target: "mysql-1"},
			}
		},
	},
	"open-loop": {
		cause: CauseOverload,
		desc:  "open Poisson arrivals with deterministic surges past app-tier capacity",
		build: func(seed int64, duration, ramp simnet.Duration) Config {
			return Config{
				Duration: duration,
				Ramp:     ramp,
				Seed:     seed,
				OpenLoop: &OpenLoopConfig{
					Rate:        800,
					SurgeFactor: 2.0,
					SurgeEvery:  duration / 4,
					SurgeLen:    duration / 10,
				},
				// Open-loop surges push thousands of pages in flight; give
				// the web tier enough threads and backlog that TCP
				// retransmissions do not confound the app-tier signal.
				WebThreads:       6000,
				WebAcceptBacklog: 20000,
			}
		},
	},
	"slow-start": {
		cause: CauseSlowStart,
		desc:  "a third Tomcat joins mid-run and serves 3× slower while warming",
		build: func(seed int64, duration, ramp simnet.Duration) Config {
			return Config{
				Users:     10500,
				Duration:  duration,
				Ramp:      ramp,
				Seed:      seed,
				Autoscale: &AutoscaleConfig{},
			}
		},
	},
}

// ScenarioNames lists the battery scenario names in sorted order.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarioPresets))
	for name := range scenarioPresets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ScenarioDescription returns the one-line description of a scenario.
func ScenarioDescription(name string) string {
	return scenarioPresets[name].desc
}

// ScenarioCause returns the ground-truth cause kind a scenario injects,
// or "" for an unknown name.
func ScenarioCause(name string) CauseKind {
	return scenarioPresets[name].cause
}

// ScenarioPreset returns the canonical configuration for a named battery
// scenario. Zero duration and ramp select the defaults (3 m / 20 s).
func ScenarioPreset(name string, seed int64, duration, ramp simnet.Duration) (Config, error) {
	p, ok := scenarioPresets[name]
	if !ok {
		return Config{}, fmt.Errorf("ntier: unknown scenario %q (have %v)", name, ScenarioNames())
	}
	if duration <= 0 {
		duration = 3 * simnet.Minute
	}
	if ramp <= 0 {
		ramp = 20 * simnet.Second
	}
	return p.build(seed, duration, ramp), nil
}
