package ntier

import (
	"transientbd/internal/simnet"
	"transientbd/internal/trace"
)

// FaultSpec describes the capture-side degradations InjectFaults applies
// to a clean wire trace: the failure modes of real passive tracing rigs
// (dropped packets at the mirror port, duplicated frames, drifting
// per-server clocks, a capture that stops mid-run). The zero value
// injects nothing.
type FaultSpec struct {
	// Seed drives the loss and duplication draws; the same seed and spec
	// always degrade a trace identically.
	Seed int64
	// LossRate is the probability each message is silently dropped.
	LossRate float64
	// DupRate is the probability each surviving message is recorded
	// twice (same timestamp), as a mirroring switch under load does.
	DupRate float64
	// SkewByServer shifts every message *sent by* the named server by
	// the given amount (negative = that server's clock trails).
	SkewByServer map[string]simnet.Duration
	// TruncateAt drops every message at or after this time (0 = off),
	// modeling a capture that ends mid-run.
	TruncateAt simnet.Time
}

// FaultReport tallies what InjectFaults did.
type FaultReport struct {
	Input      int
	Dropped    int
	Duplicated int
	Skewed     int
	Truncated  int
	Output     int
}

// InjectFaults returns a degraded copy of a wire capture per the spec.
// The input is never modified.
func InjectFaults(msgs []trace.Message, spec FaultSpec) ([]trace.Message, FaultReport) {
	rng := simnet.NewRNG(spec.Seed).Split("faults")
	rep := FaultReport{Input: len(msgs)}
	out := make([]trace.Message, 0, len(msgs))
	for _, m := range msgs {
		if spec.TruncateAt > 0 && m.At >= spec.TruncateAt {
			rep.Truncated++
			continue
		}
		if spec.LossRate > 0 && rng.Float64() < spec.LossRate {
			rep.Dropped++
			continue
		}
		if off, ok := spec.SkewByServer[m.From]; ok && off != 0 {
			m.At += off
			rep.Skewed++
		}
		out = append(out, m)
		if spec.DupRate > 0 && rng.Float64() < spec.DupRate {
			out = append(out, m)
			rep.Duplicated++
		}
	}
	rep.Output = len(out)
	return out, rep
}
