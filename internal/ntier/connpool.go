package ntier

// connPool hands out TCP connection identities per (from, to) host pair,
// emulating the connection pooling of a synchronous RPC stack: a
// connection carries at most one outstanding call, is returned to the
// pool when the response arrives, and new connections are opened only
// when the pool is empty. The identities appear on wire messages and are
// what lets a black-box tracer (SysViz, trace.Reconstruct) demultiplex
// concurrent same-class calls.
type connPool struct {
	free map[[2]string][]int64
	next int64
}

func newConnPool() *connPool {
	return &connPool{free: make(map[[2]string][]int64)}
}

// acquire checks a connection out of the (from, to) pool, opening a new
// one if none is free.
func (p *connPool) acquire(from, to string) int64 {
	key := [2]string{from, to}
	q := p.free[key]
	if n := len(q); n > 0 {
		conn := q[n-1]
		p.free[key] = q[:n-1]
		return conn
	}
	p.next++
	return p.next
}

// release returns a connection to its pool.
func (p *connPool) release(from, to string, conn int64) {
	key := [2]string{from, to}
	p.free[key] = append(p.free[key], conn)
}
