package ntier

import (
	"transientbd/internal/simnet"
)

// connPool hands out TCP connection identities per (from, to) host pair,
// emulating the connection pooling of a synchronous RPC stack: a
// connection carries at most one outstanding call, is returned to the
// pool when the response arrives, and new connections are opened only
// when the pool is empty. The identities appear on wire messages and are
// what lets a black-box tracer (SysViz, trace.Reconstruct) demultiplex
// concurrent same-class calls.
//
// A (from, to) pair may be capped (scenario: DB-tier pool exhaustion).
// Capped pairs stop opening connections at the cap; further acquires
// queue FIFO behind releases and may time out. Uncapped pairs keep the
// original synchronous fast path, so configurations without caps behave
// bit-identically to the historical pool.
type connPool struct {
	engine *simnet.Engine

	free    map[[2]string][]int64
	opened  map[[2]string]int
	caps    map[[2]string]int
	waiters map[[2]string][]*connWaiter
	timeout simnet.Duration
	next    int64

	// Wait-window accounting per destination host, used for ground truth:
	// a window opens when the first waiter queues for a destination and
	// closes when the last waiter is served or times out.
	waiting     map[string]int
	waitOpen    map[string]simnet.Time
	waitWindows map[string][]TruthWindow
	timeouts    map[string]int64
}

// connWaiter is one queued acquire on a capped pair.
type connWaiter struct {
	cb   func(conn int64, ok bool)
	done bool // served or timed out
}

func newConnPool(engine *simnet.Engine, timeout simnet.Duration) *connPool {
	return &connPool{
		engine:      engine,
		free:        make(map[[2]string][]int64),
		opened:      make(map[[2]string]int),
		caps:        make(map[[2]string]int),
		waiters:     make(map[[2]string][]*connWaiter),
		timeout:     timeout,
		waiting:     make(map[string]int),
		waitOpen:    make(map[string]simnet.Time),
		waitWindows: make(map[string][]TruthWindow),
		timeouts:    make(map[string]int64),
	}
}

// setCap bounds the (from, to) pair at cap connections.
func (p *connPool) setCap(from, to string, cap int) {
	p.caps[[2]string{from, to}] = cap
}

// acquire requests a connection for the (from, to) pair. The callback
// receives (conn, true) when a connection is available — synchronously
// for uncapped pairs or capped pairs below their bound — or (0, false)
// if the acquire waited longer than the pool timeout.
func (p *connPool) acquire(from, to string, cb func(conn int64, ok bool)) {
	key := [2]string{from, to}
	if q := p.free[key]; len(q) > 0 {
		conn := q[len(q)-1]
		p.free[key] = q[:len(q)-1]
		cb(conn, true)
		return
	}
	cap := p.caps[key]
	if cap <= 0 || p.opened[key] < cap {
		p.opened[key]++
		p.next++
		cb(p.next, true)
		return
	}
	// Pool exhausted: queue behind the next release.
	w := &connWaiter{cb: cb}
	p.waiters[key] = append(p.waiters[key], w)
	p.waitArrived(to)
	if p.timeout > 0 {
		p.engine.Schedule(p.timeout, func() {
			if w.done {
				return
			}
			w.done = true
			p.timeouts[to]++
			p.waitLeft(to)
			w.cb(0, false)
		})
	}
}

// release returns a connection to its pool, handing it straight to the
// longest-waiting queued acquire if one exists.
func (p *connPool) release(from, to string, conn int64) {
	key := [2]string{from, to}
	q := p.waiters[key]
	for len(q) > 0 {
		w := q[0]
		q = q[1:]
		if w.done {
			continue // timed out while queued
		}
		p.waiters[key] = q
		w.done = true
		p.waitLeft(to)
		w.cb(conn, true)
		return
	}
	p.waiters[key] = q
	p.free[key] = append(p.free[key], conn)
}

func (p *connPool) waitArrived(to string) {
	if p.waiting[to] == 0 {
		p.waitOpen[to] = p.engine.Now()
	}
	p.waiting[to]++
}

func (p *connPool) waitLeft(to string) {
	p.waiting[to]--
	if p.waiting[to] == 0 {
		p.waitWindows[to] = append(p.waitWindows[to], TruthWindow{
			Start: p.waitOpen[to],
			End:   p.engine.Now(),
		})
	}
}

// waitWindowsFor returns the coalesced periods during which at least one
// acquire was queued for the destination host, closing any still-open
// window at now.
func (p *connPool) waitWindowsFor(to string, now simnet.Time) []TruthWindow {
	ws := p.waitWindows[to]
	if p.waiting[to] > 0 {
		ws = append(append([]TruthWindow(nil), ws...), TruthWindow{Start: p.waitOpen[to], End: now})
	}
	// The raw signal flickers between a release and the next queued
	// arrival; merge sub-second gaps and drop blips.
	return coalesceWindows(ws, simnet.Second, 100*simnet.Millisecond)
}

// timeoutsFor returns how many acquires for the destination timed out.
func (p *connPool) timeoutsFor(to string) int64 { return p.timeouts[to] }
