package transientbd

import (
	"time"

	"transientbd/internal/core"
	"transientbd/internal/simnet"
	"transientbd/internal/stream"
	"transientbd/internal/trace"
)

// StreamConfig tunes a sharded streaming detector. The zero value runs
// one shard with the paper's online defaults (50 ms intervals, 2-minute
// window, 20 s re-estimation), an 8192-record queue, blocking
// backpressure and a 1 s flush lag.
type StreamConfig struct {
	// OnlineConfig carries the detection knobs shared with
	// OnlineDetector: interval, window, re-estimation cadence, calibrated
	// service times and raw-throughput mode.
	OnlineConfig
	// Shards is the number of shard goroutines records are
	// hash-partitioned across by server. Default 1.
	Shards int
	// QueueDepth bounds each shard's input queue, in records (default
	// 8192).
	QueueDepth int
	// DropOnFull selects the backpressure policy when a shard queue
	// fills: false (default) blocks Observe until the shard drains; true
	// drops the overflowing batch and counts it in StreamMetrics.Dropped.
	DropOnFull bool
	// FlushLag is how far the interval-closing watermark trails the
	// newest departure observed; it must exceed the longest request
	// residence plus any feed reordering skew or late records lose their
	// contribution to sealed intervals. Default 1 s.
	FlushLag time.Duration

	// CheckpointDir, when non-empty, enables durable crash recovery: the
	// runtime periodically writes a consistent cut of every analyzer's
	// state (atomic write-then-rename, checksummed, two generations kept)
	// that a later NewStream with Resume can continue from.
	CheckpointDir string
	// CheckpointEvery is the trace-time between automatic checkpoints
	// (default 10 s of trace time when CheckpointDir is set). Checkpoints
	// are taken at watermark barriers, so every cut is consistent across
	// shards.
	CheckpointEvery time.Duration
	// Resume makes NewStream load the newest valid checkpoint in
	// CheckpointDir and continue from it; ResumeInfo reports what was
	// restored and how many records of the original feed to skip.
	// Corrupt checkpoint files fall back to the previous generation, then
	// to a cold start — never an error.
	Resume bool

	// Downstream is the optional caller→callee server map for root-cause
	// attribution, with the same semantics as Config.Downstream. Pass the
	// same map to Analyze and NewStream and the two surfaces emit
	// field-identical verdicts for equivalent windows.
	Downstream map[string][]string
}

// StreamResumeInfo describes what NewStream restored when
// StreamConfig.Resume was set.
type StreamResumeInfo struct {
	// Resumed reports whether a checkpoint was loaded; false means a cold
	// start (no checkpoint directory, no file, or none valid).
	Resumed bool
	// Watermark is the trace time of the restored cut.
	Watermark time.Duration
	// SkipRecords is the replay cursor: how many records of the original
	// feed (counting only records Observe accepted) are already
	// incorporated in the restored state. A caller re-reading the same
	// feed must skip that many acceptable records before resuming
	// Observe, or they are double-counted.
	SkipRecords int64
	// Warnings lists checkpoint files and per-server states skipped as
	// corrupt or incompatible during the resume.
	Warnings []string
}

// StreamMetrics is the runtime's self-metrics block: cumulative counters
// plus a point-in-time sample of each shard's queue depth. Divide the
// deltas of Ingested between two reads by the elapsed wall time for
// records/s.
type StreamMetrics struct {
	// Shards is the configured shard count.
	Shards int
	// Ingested counts records accepted into shard queues; Dropped counts
	// records discarded under DropOnFull; Late counts records that
	// arrived after their completion interval was sealed.
	Ingested, Dropped, Late int64
	// IntervalsClosed counts per-server interval closures; Congested and
	// Freezes count how many of those closed congested / as freezes.
	IntervalsClosed, Congested, Freezes int64
	// Reestimates counts N* refreshes across all servers.
	Reestimates int64
	// QueueDepth samples each shard's queued record count.
	QueueDepth []int64
	// Checkpoints and CheckpointsFailed count durable checkpoint cuts
	// written and checkpoint attempts abandoned (a failed attempt keeps
	// the previous file).
	Checkpoints, CheckpointsFailed int64
	// ShardRestarts counts shard quarantine/rebuild cycles after an
	// internal panic; DegradedShards counts shards that exhausted the
	// crash-loop budget and now drop records with accounting.
	ShardRestarts, DegradedShards int64
	// RecordsLost counts records whose contribution could not be replayed
	// during a shard rebuild (or was dropped by a degraded shard);
	// AlertsLost counts interval closures discarded because their shard
	// failed mid-barrier. Both stay zero in a healthy run: loss is always
	// accounted, never silent.
	RecordsLost, AlertsLost int64
}

// Stream is the sharded online detection runtime: OnlineDetector scaled
// out the way its doc comment prescribes. Records are hash-partitioned
// by server across shard goroutines, each the single writer for its
// servers' sliding windows; bounded queues apply backpressure (or drop
// and count); a merger emits one globally time-ordered alert stream; and
// Snapshot/Close reclassify every window batch-style into a ranked
// Report.
//
// Observe, Advance, Snapshot and Close must be called from one
// goroutine. Alerts must be drained (a blocked alert consumer eventually
// backpressures ingestion); Metrics is safe from any goroutine.
//
// Alerts are the provisional real-time view: each classifies against the
// N* current when its interval closed, so roughly the first Window of
// alerts rides on a provisional estimate while the sliding window warms
// up. The Report from Snapshot/Close re-judges every interval still in
// the window with the batch decision stage; while the window covers the
// whole stream it is identical to Analyze of the same records.
type Stream struct {
	rt         *stream.Runtime
	alerts     chan OnlineAlert
	downstream map[string][]string
	closed     bool
	final      *Report
}

// ErrClosed is returned by Observe, Advance and Checkpoint after Close
// or Abort. Check with errors.Is.
var ErrClosed = stream.ErrClosed

// NewStream starts the sharded runtime. Close must be called to release
// its goroutines.
func NewStream(cfg StreamConfig) (*Stream, error) {
	rt, err := stream.New(stream.Config{
		Online:          cfg.OnlineConfig.coreOptions(),
		Shards:          cfg.Shards,
		QueueDepth:      cfg.QueueDepth,
		DropOnFull:      cfg.DropOnFull,
		FlushLag:        simnet.FromStdDuration(cfg.FlushLag),
		CheckpointDir:   cfg.CheckpointDir,
		CheckpointEvery: simnet.FromStdDuration(cfg.CheckpointEvery),
		Resume:          cfg.Resume,
	})
	if err != nil {
		return nil, err
	}
	s := &Stream{rt: rt, alerts: make(chan OnlineAlert, 256), downstream: cfg.Downstream}
	go func() {
		defer close(s.alerts)
		for a := range rt.Alerts() {
			s.alerts <- OnlineAlert{
				Server:     a.Server,
				Time:       simnet.Std(simnet.Duration(a.At)),
				Load:       a.Load,
				Throughput: a.TP,
				Congested:  a.State == core.StateCongested,
				Freeze:     a.POI,
			}
		}
	}()
	return s, nil
}

// Observe ingests one completed record, routing it to its server's
// shard. The watermark advances automatically as the trace clock moves.
func (s *Stream) Observe(r Record) error {
	if err := validateRecord(0, &r); err != nil {
		return err
	}
	return s.rt.Observe(trace.Visit{
		Server:     r.Server,
		Class:      r.Class,
		Arrive:     simnet.FromStdDuration(r.Arrive),
		Depart:     simnet.FromStdDuration(r.Depart),
		Downstream: simnet.FromStdDuration(r.DownstreamWait),
		TxnID:      r.TxnID,
		HopID:      r.HopID,
	})
}

// Advance manually moves the watermark to now, closing every interval
// ending at or before it. Useful when the feed goes quiet and the
// trace clock stalls; Observe advances automatically otherwise. Returns
// ErrClosed after Close or Abort.
func (s *Stream) Advance(now time.Duration) error {
	if s.closed {
		return ErrClosed
	}
	s.rt.Advance(simnet.FromStdDuration(now))
	return nil
}

// Checkpoint takes an explicit consistent cut covering every record
// accepted so far and, when CheckpointDir is set, writes it durably. A
// returned error means the cut was abandoned; the previous checkpoint
// file, if any, stays valid. Returns ErrClosed after Close or Abort.
func (s *Stream) Checkpoint() error {
	if s.closed {
		return ErrClosed
	}
	return s.rt.Checkpoint()
}

// Abort hard-stops the stream without sealing intervals, emitting final
// alerts or writing a final checkpoint — the shutdown shape of a crash.
// State persisted by earlier checkpoints stays on disk for a later
// NewStream with Resume. Idempotent; a no-op after Close; Close after
// Abort returns nil.
func (s *Stream) Abort() {
	if s.closed {
		return
	}
	s.rt.Abort()
	s.closed = true
}

// ResumeInfo reports what NewStream restored when StreamConfig.Resume
// was set (the zero value for a cold start).
func (s *Stream) ResumeInfo() StreamResumeInfo {
	info := s.rt.ResumeInfo()
	return StreamResumeInfo{
		Resumed:     info.Resumed,
		Watermark:   simnet.Std(simnet.Duration(info.Watermark)),
		SkipRecords: info.SkipRecords,
		Warnings:    info.Warnings,
	}
}

// Alerts returns the merged, time-ordered alert stream. Closed by Close
// after the final intervals flush.
func (s *Stream) Alerts() <-chan OnlineAlert { return s.alerts }

// Metrics returns a snapshot of the runtime's self-metrics counters.
func (s *Stream) Metrics() StreamMetrics {
	m := s.rt.Metrics()
	return StreamMetrics{
		Shards:          m.Shards,
		Ingested:        m.Ingested,
		Dropped:         m.Dropped,
		Late:            m.Late,
		IntervalsClosed: m.IntervalsClosed,
		Congested:       m.Congested,
		Freezes:         m.Freezes,
		Reestimates:     m.Reestimates,
		QueueDepth:      m.QueueDepth,

		Checkpoints:       m.Checkpoints,
		CheckpointsFailed: m.CheckpointsFailed,
		ShardRestarts:     m.ShardRestarts,
		DegradedShards:    m.DegradedShards,
		RecordsLost:       m.RecordsLost,
		AlertsLost:        m.AlertsLost,
	}
}

// Snapshot returns the ranked bottleneck report over every server's
// current sliding window — the streaming counterpart of Analyze's
// Report (Quality is nil; degraded-feed accounting lives in Metrics).
// Servers with no closed intervals yet are omitted. Returns nil before
// any interval has closed.
func (s *Stream) Snapshot() *Report {
	return convertStreamSnapshot(s.rt.Snapshot(), s.downstream)
}

// Close seals the stream: every interval with data is closed and its
// alerts emitted, the alert channel is closed, the shard and merger
// goroutines stop, and the final report is returned. Close is
// idempotent. The alert channel must still be drained (or already have a
// consumer) for Close to complete.
func (s *Stream) Close() *Report {
	if !s.closed {
		s.final = convertStreamSnapshot(s.rt.Close(), s.downstream)
		s.closed = true
	}
	return s.final
}

func convertStreamSnapshot(snap *stream.Snapshot, downstream map[string][]string) *Report {
	if snap == nil || len(snap.Ranking) == 0 {
		return nil
	}
	report := &Report{PerServer: make(map[string]*ServerAnalysis, len(snap.Ranking))}
	for _, ss := range snap.Ranking {
		sa := &ServerAnalysis{
			Server:            ss.Server,
			NStar:             ss.NStar.NStar,
			TPMax:             ss.NStar.TPMax,
			Saturated:         ss.NStar.Saturated,
			CongestedFraction: ss.CongestedFraction,
			Load:              ss.Load,
			Throughput:        ss.TP,
			Interval:          simnet.Std(ss.Interval),
			WindowStart:       simnet.Std(simnet.Duration(ss.Start)),
		}
		fillEpisodes(sa, ss.States, ss.POIs, func(i int) time.Duration {
			return sa.WindowStart + time.Duration(i)*sa.Interval
		})
		report.PerServer[ss.Server] = sa
		report.Ranking = append(report.Ranking, sa)
	}
	sortRanking(report.Ranking)
	attachCauses(report, downstream)
	return report
}
