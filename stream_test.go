package transientbd

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"
)

// The equivalence harness: the sharded online runtime and the batch
// Analyze path must produce identical per-interval classifications for
// the same records — at any shard count and any input interleaving. The
// oracle is the same one PR 1 used for worker counts, extended into the
// streaming domain: batch output is the reference, the runtime must
// reproduce it bit-for-bit.
//
// Two conditions make bit-equality attainable rather than approximate
// (see internal/stream's package comment):
//   - a calibrated service-time table shared by both paths (the paper's
//     low-load calibration pass), so normalization does not depend on
//     what each path happened to observe first;
//   - a FlushLag longer than the trace span in this harness, so no
//     interval seals before a shuffled straggler lands (arbitrary
//     interleaving means unbounded reordering skew).

// streamServiceTimes is the calibrated per-class table every harness
// workload draws residences from. The entries are multiples of a common
// 2 ms unit, so work-unit counts are small exact integers and float
// summation is exact in both paths.
var streamServiceTimes = map[string]time.Duration{
	"small": 2 * time.Millisecond,
	"mid":   4 * time.Millisecond,
	"big":   8 * time.Millisecond,
}

var streamClasses = []struct {
	name string
	svc  time.Duration
}{
	{"small", 2 * time.Millisecond},
	{"mid", 4 * time.Millisecond},
	{"big", 8 * time.Millisecond},
}

// usDur quantizes to the microsecond grid shared by both paths, so the
// generator cannot produce sub-microsecond timestamps that the internal
// conversion would truncate.
func usDur(us int64) time.Duration { return time.Duration(us) * time.Microsecond }

// burstyWorkload is a three-tier system with a steady background trickle
// everywhere and heavy request bursts at the middle tier: the paper's
// transient-bottleneck shape (short congestion episodes against a mostly
// normal baseline).
func burstyWorkload(seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	var recs []Record
	const spanUS = int64(20e6) // 20 s
	for _, server := range []string{"web", "app", "db"} {
		for t := int64(0); t < spanUS; t += 10_000 {
			c := streamClasses[rng.Intn(len(streamClasses))]
			arrive := t + rng.Int63n(5_000)
			recs = append(recs, Record{
				Server: server,
				Class:  c.name,
				Arrive: usDur(arrive),
				Depart: usDur(arrive) + c.svc + usDur(rng.Int63n(2_000)),
			})
		}
	}
	for b := 0; b < 8; b++ {
		start := rng.Int63n(spanUS - int64(1e6))
		for i := 0; i < 60; i++ {
			arrive := start + rng.Int63n(100_000)
			recs = append(recs, Record{
				Server: "app",
				Class:  "big",
				Arrive: usDur(arrive),
				Depart: usDur(arrive) + 200*time.Millisecond,
			})
		}
	}
	return recs
}

// uniformWorkload spreads random residences across six servers — no
// structure, just volume, exercising the hash partitioning and merge
// across a wider server set.
func uniformWorkload(seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	var recs []Record
	const spanUS = int64(15e6) // 15 s
	for i := 0; i < 5000; i++ {
		c := streamClasses[rng.Intn(len(streamClasses))]
		arrive := rng.Int63n(spanUS)
		recs = append(recs, Record{
			Server: fmt.Sprintf("node-%d", rng.Intn(6)),
			Class:  c.name,
			Arrive: usDur(arrive),
			Depart: usDur(arrive) + c.svc + usDur(rng.Int63n(300_000)),
		})
	}
	return recs
}

// rampWorkload ramps one server's concurrency from idle to saturated —
// the knee-curve shape N* estimation keys on — next to a sparse server
// that never leaves idle (exercising the ErrNoPoints fallback) and a
// server with a single record (the degenerate edge).
func rampWorkload(seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	var recs []Record
	for step := int64(0); step < 100; step++ {
		t := step * 100_000 // every 100 ms
		depth := int(step/10) + 1
		for i := 0; i < depth; i++ {
			arrive := t + rng.Int63n(20_000)
			recs = append(recs, Record{
				Server: "ramp",
				Class:  "mid",
				Arrive: usDur(arrive),
				Depart: usDur(arrive) + usDur(40_000+rng.Int63n(20_000)),
			})
		}
	}
	for t := int64(0); t < int64(10e6); t += 1_000_000 {
		recs = append(recs, Record{
			Server: "sparse",
			Class:  "small",
			Arrive: usDur(t),
			Depart: usDur(t) + 2*time.Millisecond,
		})
	}
	recs = append(recs, Record{
		Server: "lone",
		Class:  "big",
		Arrive: usDur(777),
		Depart: usDur(777) + 8*time.Millisecond,
	})
	return recs
}

var streamWorkloads = []struct {
	name string
	gen  func(int64) []Record
}{
	{"bursty", burstyWorkload},
	{"uniform", uniformWorkload},
	{"ramp", rampWorkload},
}

// alignedWindowEnd returns the batch window end rounded up to the next
// interval boundary, matching the watermark the runtime's Close advances
// to: with both ends on the same grid point the two paths cover the same
// interval count.
func alignedWindowEnd(recs []Record, interval time.Duration) time.Duration {
	var max time.Duration
	for _, r := range recs {
		if r.Depart > max {
			max = r.Depart
		}
	}
	return (max/interval + 1) * interval
}

// batchReference analyzes recs through the batch path with the harness
// calibration, serving as the oracle.
func batchReference(t *testing.T, recs []Record) *Report {
	t.Helper()
	report, err := Analyze(recs, Config{
		ServiceTimes: streamServiceTimes,
		WindowEnd:    alignedWindowEnd(recs, 50*time.Millisecond),
	})
	if err != nil {
		t.Fatalf("batch Analyze: %v", err)
	}
	return report
}

// streamReport feeds recs (in the given order) through a sharded runtime
// and returns the final report. The window covers the whole trace and
// FlushLag exceeds its span, so nothing seals early whatever the
// interleaving.
func streamReport(t *testing.T, recs []Record, shards int) *Report {
	t.Helper()
	st, err := NewStream(StreamConfig{
		OnlineConfig: OnlineConfig{
			Window:       20 * time.Minute,
			ServiceTimes: streamServiceTimes,
		},
		Shards:   shards,
		FlushLag: time.Hour,
	})
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	done := make(chan int)
	go func() {
		n := 0
		for range st.Alerts() {
			n++
		}
		done <- n
	}()
	for i, r := range recs {
		if err := st.Observe(r); err != nil {
			t.Errorf("Observe record %d: %v", i, err)
		}
	}
	report := st.Close()
	<-done
	return report
}

func compareReports(t *testing.T, want, got *Report) {
	t.Helper()
	if got == nil {
		t.Fatalf("stream report is nil")
	}
	if len(got.PerServer) != len(want.PerServer) {
		t.Fatalf("server count: stream %d, batch %d", len(got.PerServer), len(want.PerServer))
	}
	for name, w := range want.PerServer {
		g, ok := got.PerServer[name]
		if !ok {
			t.Errorf("server %q missing from stream report", name)
			continue
		}
		if g.NStar != w.NStar || g.TPMax != w.TPMax || g.Saturated != w.Saturated {
			t.Errorf("%s: N* (%v,%v,%v) != batch (%v,%v,%v)",
				name, g.NStar, g.TPMax, g.Saturated, w.NStar, w.TPMax, w.Saturated)
		}
		if g.CongestedFraction != w.CongestedFraction {
			t.Errorf("%s: congested fraction %v != batch %v", name, g.CongestedFraction, w.CongestedFraction)
		}
		if !reflect.DeepEqual(g.Load, w.Load) {
			t.Errorf("%s: load series diverges (len %d vs %d)", name, len(g.Load), len(w.Load))
		}
		if !reflect.DeepEqual(g.Throughput, w.Throughput) {
			t.Errorf("%s: throughput series diverges (len %d vs %d)", name, len(g.Throughput), len(w.Throughput))
		}
		if !reflect.DeepEqual(g.Episodes, w.Episodes) {
			t.Errorf("%s: episodes %v != batch %v", name, g.Episodes, w.Episodes)
		}
		if !reflect.DeepEqual(g.POITimes, w.POITimes) {
			t.Errorf("%s: POI times %v != batch %v", name, g.POITimes, w.POITimes)
		}
		if g.Interval != w.Interval || g.WindowStart != w.WindowStart {
			t.Errorf("%s: grid (%v,%v) != batch (%v,%v)", name, g.Interval, g.WindowStart, w.Interval, w.WindowStart)
		}
	}
	for i := range want.Ranking {
		if i >= len(got.Ranking) || got.Ranking[i].Server != want.Ranking[i].Server {
			t.Errorf("ranking[%d]: stream has %q, batch has %q", i, rankName(got.Ranking, i), want.Ranking[i].Server)
		}
	}
	// Root-cause verdicts ride the same contract: batch and stream must
	// attribute the same feed field-identically, Evidence strings included.
	if !reflect.DeepEqual(got.Causes, want.Causes) {
		t.Errorf("cause verdicts diverge:\nstream %+v\nbatch  %+v", got.Causes, want.Causes)
	}
}

func rankName(rs []*ServerAnalysis, i int) string {
	if i >= len(rs) {
		return "<missing>"
	}
	return rs[i].Server
}

// TestStreamBatchEquivalence is the headline harness: for every workload,
// shard count, GOMAXPROCS setting and interleaving, the runtime's final
// report must equal the batch report bit-for-bit. The GOMAXPROCS
// dimension matters because the shard goroutines really interleave
// differently at 1 and 4 procs — true parallelism must not change a
// single bit of the result (the race detector covers memory safety in
// CI's race-enabled run of this same harness; this covers determinism).
func TestStreamBatchEquivalence(t *testing.T) {
	entryProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(entryProcs)
	for _, wl := range streamWorkloads {
		t.Run(wl.name, func(t *testing.T) {
			recs := wl.gen(42)
			want := batchReference(t, recs)
			for _, procs := range []int{1, 4} {
				for _, shards := range []int{1, 4, 8} {
					for _, order := range []struct {
						name    string
						shuffle int64 // 0 = feed order (generator order)
					}{
						{"feed-order", 0},
						{"shuffled-a", 1},
						{"shuffled-b", 99},
					} {
						t.Run(fmt.Sprintf("procs=%d/shards=%d/%s", procs, shards, order.name), func(t *testing.T) {
							feed := recs
							if order.shuffle != 0 {
								feed = append([]Record(nil), recs...)
								rand.New(rand.NewSource(order.shuffle)).Shuffle(len(feed), func(i, j int) {
									feed[i], feed[j] = feed[j], feed[i]
								})
							}
							runtime.GOMAXPROCS(procs)
							defer runtime.GOMAXPROCS(entryProcs)
							compareReports(t, want, streamReport(t, feed, shards))
						})
					}
				}
			}
		})
	}
}

// TestStreamAlertDeterminism pins the live alert stream down: fed in
// departure order with an adequate FlushLag, the merged stream is
// globally ordered by (time, server) and identical at every shard count.
func TestStreamAlertDeterminism(t *testing.T) {
	recs := burstyWorkload(7)
	// Departure order is how a passive tracer emits completions.
	sortRecords(recs)
	var reference []OnlineAlert
	for _, shards := range []int{1, 4, 8} {
		st, err := NewStream(StreamConfig{
			OnlineConfig: OnlineConfig{
				Window:       20 * time.Minute,
				ServiceTimes: streamServiceTimes,
			},
			Shards: shards,
			// Max residence in burstyWorkload is 200 ms; half a second of
			// lag gives stragglers room without deferring all closes.
			FlushLag: 500 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewStream: %v", err)
		}
		var alerts []OnlineAlert
		done := make(chan struct{})
		go func() {
			defer close(done)
			for a := range st.Alerts() {
				alerts = append(alerts, a)
			}
		}()
		for _, r := range recs {
			if err := st.Observe(r); err != nil {
				t.Fatalf("Observe: %v", err)
			}
		}
		st.Close()
		<-done
		if len(alerts) == 0 {
			t.Fatalf("shards=%d: no alerts", shards)
		}
		for i := 1; i < len(alerts); i++ {
			a, b := alerts[i-1], alerts[i]
			if b.Time < a.Time || (b.Time == a.Time && b.Server < a.Server) {
				t.Fatalf("shards=%d: alert %d (%s@%v) out of order after (%s@%v)",
					shards, i, b.Server, b.Time, a.Server, a.Time)
			}
		}
		if m := st.Metrics(); m.Late != 0 {
			t.Errorf("shards=%d: %d late records despite adequate FlushLag", shards, m.Late)
		}
		if reference == nil {
			reference = alerts
			continue
		}
		if !reflect.DeepEqual(alerts, reference) {
			t.Errorf("shards=%d: alert stream differs from single-shard reference (%d vs %d alerts)",
				shards, len(alerts), len(reference))
		}
	}
}

// sortRecords orders records the way a passive tracer emits them: by
// completion time.
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Depart != recs[j].Depart {
			return recs[i].Depart < recs[j].Depart
		}
		return recs[i].Server < recs[j].Server
	})
}

// TestStreamMetricsAccounting checks the self-metrics invariants: every
// record is either ingested or dropped, late records are counted, and the
// closure counters agree with the alert stream.
func TestStreamMetricsAccounting(t *testing.T) {
	recs := uniformWorkload(3)
	sortRecords(recs)
	st, err := NewStream(StreamConfig{
		OnlineConfig: OnlineConfig{
			Window:       20 * time.Minute,
			ServiceTimes: streamServiceTimes,
		},
		Shards:   4,
		FlushLag: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	var total, congested, freezes int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range st.Alerts() {
			total++
			if a.Congested {
				congested++
			}
			if a.Freeze {
				freezes++
			}
		}
	}()
	for _, r := range recs {
		if err := st.Observe(r); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	// A record far in the past, after the watermark has moved on: must be
	// counted late, not silently swallowed.
	straggler := Record{Server: recs[0].Server, Class: "small", Arrive: time.Microsecond, Depart: 2 * time.Millisecond}
	if err := st.Observe(straggler); err != nil {
		t.Fatalf("Observe straggler: %v", err)
	}
	st.Close()
	<-done
	m := st.Metrics()
	if m.Ingested+m.Dropped != int64(len(recs))+1 {
		t.Errorf("ingested %d + dropped %d != %d records", m.Ingested, m.Dropped, len(recs)+1)
	}
	if m.Dropped != 0 {
		t.Errorf("blocking backpressure dropped %d records", m.Dropped)
	}
	if m.Late == 0 {
		t.Errorf("straggler not counted late")
	}
	if m.IntervalsClosed != total {
		t.Errorf("IntervalsClosed %d != %d alerts received", m.IntervalsClosed, total)
	}
	if m.Congested != congested || m.Freezes != freezes {
		t.Errorf("metrics (%d congested, %d freezes) != alert stream (%d, %d)",
			m.Congested, m.Freezes, congested, freezes)
	}
	if m.Shards != 4 || len(m.QueueDepth) != 4 {
		t.Errorf("shard accounting: %d shards, %d queue depths", m.Shards, len(m.QueueDepth))
	}
}

// TestStreamCloseIdempotent checks Close/Observe-after-Close behavior.
func TestStreamCloseIdempotent(t *testing.T) {
	st, err := NewStream(StreamConfig{OnlineConfig: OnlineConfig{ServiceTimes: streamServiceTimes}})
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	go func() {
		for range st.Alerts() {
		}
	}()
	if err := st.Observe(Record{Server: "a", Arrive: 0, Depart: 3 * time.Millisecond}); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	first := st.Close()
	if first == nil {
		t.Fatalf("Close returned nil report despite data")
	}
	if again := st.Close(); again != first {
		t.Errorf("second Close returned a different report")
	}
	if err := st.Observe(Record{Server: "a", Arrive: 0, Depart: time.Millisecond}); err == nil {
		t.Errorf("Observe after Close did not fail")
	}
}

// TestStreamEmpty: a runtime that saw nothing must close cleanly with a
// nil report.
func TestStreamEmpty(t *testing.T) {
	st, err := NewStream(StreamConfig{})
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	go func() {
		for range st.Alerts() {
		}
	}()
	if report := st.Close(); report != nil {
		t.Errorf("empty stream produced a report: %+v", report)
	}
}
