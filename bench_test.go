package transientbd

// Benchmark harness: one benchmark per paper table/figure (regenerating
// the artifact on a reduced-duration run per iteration), plus ablation
// and substrate microbenchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks measure end-to-end regeneration cost; the
// shape assertions for the artifacts themselves live in
// internal/experiments' tests and EXPERIMENTS.md records full-duration
// numbers.

import (
	"io"
	"testing"
	"time"

	"transientbd/internal/cli"
	"transientbd/internal/core"
	"transientbd/internal/experiments"
	"transientbd/internal/mva"
	"transientbd/internal/simnet"
	"transientbd/internal/stream"
	"transientbd/internal/trace"
)

// benchOpts keeps per-iteration cost manageable while exercising the same
// code paths as the full 3-minute experiments.
func benchOpts() experiments.RunOpts {
	return experiments.RunOpts{
		Seed:     1,
		Duration: 15 * simnet.Second,
		Ramp:     5 * simnet.Second,
	}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.Run(io.Discard, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2a regenerates the throughput-vs-workload sweep (reduced to
// three workloads per iteration).
func BenchmarkFig2a(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2([]int{2000, 8000, 12000}, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2c regenerates the WL 8,000 response-time histogram.
func BenchmarkFig2c(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2([]int{8000}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if r.Histogram == nil {
			b.Fatal("no histogram")
		}
	}
}

// BenchmarkFig3TableI regenerates the CPU timelines and Table I.
func BenchmarkFig3TableI(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4 regenerates the trace-reconstruction accuracy experiment.
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5 regenerates the MySQL fine-grained analysis at WL 7,000.
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6 regenerates the load-calculation example.
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7 regenerates the normalization example.
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8 regenerates the interval-length sensitivity study.
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9to11 regenerates the JVM GC case study (three runs).
func BenchmarkFig9to11(b *testing.B) { runExperiment(b, "fig9-11") }

// BenchmarkFig12to13 regenerates the SpeedStep case study (four runs).
func BenchmarkFig12to13(b *testing.B) { runExperiment(b, "fig12-13") }

// BenchmarkTableII regenerates the P-state table.
func BenchmarkTableII(b *testing.B) { runExperiment(b, "tableII") }

// --- Ablation benches (design choices called out in DESIGN.md §5) ------

// syntheticVisits builds a deterministic mixed-class visit stream for
// analyzer ablations: n visits across two classes on one server.
func syntheticVisits(n int) []Record {
	recs := make([]Record, 0, n)
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		class, span := "short", 2*time.Millisecond
		if i%5 == 0 {
			class, span = "long", 10*time.Millisecond
		}
		at += 3 * time.Millisecond
		recs = append(recs, Record{
			Server: "s", Class: class,
			Arrive: at, Depart: at + span,
		})
	}
	return recs
}

// BenchmarkAnalyzeNormalized measures the full pipeline with work-unit
// normalization (the paper's method).
func BenchmarkAnalyzeNormalized(b *testing.B) {
	recs := syntheticVisits(50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(recs, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeRaw is the ablation: straightforward request counting
// (what normalization replaces).
func BenchmarkAnalyzeRaw(b *testing.B) {
	recs := syntheticVisits(50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(recs, Config{RawThroughput: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeInterval sweeps the monitoring interval length (the
// Fig 8 knob): shorter intervals mean more points to bin and classify.
func BenchmarkAnalyzeInterval(b *testing.B) {
	recs := syntheticVisits(50000)
	for _, interval := range []time.Duration{20, 50, 1000} {
		iv := interval * time.Millisecond
		b.Run(iv.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(recs, Config{Interval: iv}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeParallel measures the per-server fan-out of the
// detection pipeline over a multi-server bursty trace at 1/2/4/8 workers.
// The same workload backs `experiments bench`, which writes the numbers
// to BENCH_analyze.json (see PERFORMANCE.md); wall-clock speedup tracks
// min(servers, GOMAXPROCS, workers).
func BenchmarkAnalyzeParallel(b *testing.B) {
	perServer, w := cli.BenchVisits(100000, 8, 3, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(itoa(workers)+"workers", func(b *testing.B) {
			opts := core.Options{Interval: 50 * simnet.Millisecond, Parallelism: workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.AnalyzeSystemGrouped(perServer, w, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNStarBins sweeps the bin count k of the congestion-point
// estimator.
func BenchmarkNStarBins(b *testing.B) {
	rng := simnet.NewRNG(1)
	pts := make([]core.Point, 20000)
	for i := range pts {
		load := rng.Float64() * 30
		tp := 100 * load
		if load > 10 {
			tp = 1000
		}
		pts[i] = core.Point{Load: load, TP: tp * (1 + 0.05*(rng.Float64()-0.5))}
	}
	for _, bins := range []int{25, 100, 400} {
		b.Run(itoa(bins), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.EstimateNStar(pts, core.NStarOptions{Bins: bins}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Substrate microbenches --------------------------------------------

// BenchmarkEngineEvents measures raw event throughput of the simulation
// engine.
func BenchmarkEngineEvents(b *testing.B) {
	b.ReportAllocs()
	e := simnet.NewEngine()
	var tick func()
	count := 0
	tick = func() {
		count++
		if count < b.N {
			e.Schedule(simnet.Microsecond, tick)
		}
	}
	e.Schedule(0, tick)
	b.ResetTimer()
	if err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReconstruct measures black-box trace reconstruction throughput.
func BenchmarkReconstruct(b *testing.B) {
	var msgs []trace.Message
	for i := int64(0); i < 20000; i++ {
		at := simnet.Time(i) * 50
		msgs = append(msgs,
			trace.Message{At: at, From: "a", To: "b", Dir: trace.Call, Class: "q", Conn: i % 64, HopID: i + 1},
			trace.Message{At: at + 700, From: "b", To: "a", Dir: trace.Return, Class: "q", Conn: i % 64, HopID: i + 1},
		)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := trace.Reconstruct(msgs)
		if res.PairedHops != 20000 {
			b.Fatal("bad reconstruction")
		}
	}
}

// BenchmarkScenarioThroughput measures full-simulator speed: virtual
// seconds simulated per wall second at the paper's WL 8,000.
func BenchmarkScenarioThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunScenario(Scenario{
			Users:    8000,
			Duration: 10 * time.Second,
			Ramp:     2 * time.Second,
			Seed:     int64(i),
			Bursty:   true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Records) == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkOnlineDetector measures streaming ingestion + classification
// throughput (records/second of trace processed).
func BenchmarkOnlineDetector(b *testing.B) {
	recs := syntheticVisits(50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewOnlineDetector(OnlineConfig{})
		for _, r := range recs {
			if err := d.Observe(r); err != nil {
				b.Fatal(err)
			}
		}
		d.Advance(recs[len(recs)-1].Depart)
	}
}

// benchStreamShards measures end-to-end ingest throughput of the sharded
// online runtime: one op observes the whole departure-ordered stream,
// closes every interval, and drains the merged alert stream. The same
// workload backs `experiments bench -online`, which writes the numbers
// to BENCH_online.json (see PERFORMANCE.md); wall-clock speedup tracks
// min(servers, GOMAXPROCS, shards).
func benchStreamShards(b *testing.B, shards int) {
	const records = 100000
	visits := cli.BenchVisitStream(records, 8, 3, 1)
	cfg := stream.Config{
		Online: core.OnlineOptions{Options: core.Options{Interval: 50 * simnet.Millisecond}},
		Shards: shards,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := stream.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range rt.Alerts() {
			}
		}()
		for j := range visits {
			if err := rt.Observe(visits[j]); err != nil {
				b.Fatal(err)
			}
		}
		rt.Close()
		<-done
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkStreamShards1(b *testing.B) { benchStreamShards(b, 1) }
func BenchmarkStreamShards4(b *testing.B) { benchStreamShards(b, 4) }
func BenchmarkStreamShards8(b *testing.B) { benchStreamShards(b, 8) }

// BenchmarkChooseInterval measures the §III-D automatic interval scorer.
func BenchmarkChooseInterval(b *testing.B) {
	recs := syntheticVisits(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ChooseInterval(recs, "s", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMVA measures the analytical baseline's solve time across the
// full population range.
func BenchmarkMVA(b *testing.B) {
	stations := []mva.Station{
		{Name: "web", Demand: 600 * simnet.Microsecond, Servers: 2},
		{Name: "app", Demand: 3 * simnet.Millisecond, Servers: 4},
		{Name: "db", Demand: 2850 * simnet.Microsecond, Servers: 4},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mva.Solve(stations, 7*simnet.Second, 14000); err != nil {
			b.Fatal(err)
		}
	}
}
