package transientbd

import (
	"testing"
	"time"
)

func TestClassesDrillDown(t *testing.T) {
	recs := busyTrace() // class "q" on server "db" with a burst phase
	stats, err := Classes(recs, "db", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("classes = %d, want 1", len(stats))
	}
	q := stats[0]
	if q.Class != "q" || q.Count == 0 {
		t.Errorf("stat = %+v", q)
	}
	if q.CongestedShare <= 0 {
		t.Error("burst phase produced no congested completions")
	}
	if q.MeanResidence < 10*time.Millisecond {
		t.Errorf("mean residence = %v, want >= service time", q.MeanResidence)
	}
	if q.P95Residence < q.MeanResidence {
		t.Error("p95 below mean")
	}
	if q.CongestedSlowdown <= 1 {
		t.Errorf("slowdown = %.2f, want > 1 (queueing during the burst)", q.CongestedSlowdown)
	}
}

func TestClassesValidation(t *testing.T) {
	if _, err := Classes(nil, "", Config{}); err == nil {
		t.Error("want error for empty server")
	}
	if _, err := Classes(busyTrace(), "nosuch", Config{}); err == nil {
		t.Error("want error for unknown server")
	}
	bad := []Record{{Server: "db", Arrive: time.Second, Depart: 0}}
	if _, err := Classes(bad, "db", Config{}); err == nil {
		t.Error("want error for reversed timestamps")
	}
}

func TestChooseIntervalPublicAPI(t *testing.T) {
	recs := busyTrace()
	best, table, err := ChooseInterval(recs, "db", nil)
	if err != nil {
		t.Fatal(err)
	}
	if best <= 0 {
		t.Errorf("best interval = %v", best)
	}
	if len(table) == 0 {
		t.Fatal("empty scoring table")
	}
	var bestScore float64
	for _, c := range table {
		if c.Score > bestScore {
			bestScore = c.Score
		}
	}
	for _, c := range table {
		if c.Interval == best && c.Score != bestScore {
			t.Errorf("winner %v does not carry the top score", best)
		}
	}
	if _, _, err := ChooseInterval(recs, "", nil); err == nil {
		t.Error("want error for empty server")
	}
	if _, _, err := ChooseInterval(recs, "nosuch", nil); err == nil {
		t.Error("want error for unknown server")
	}
}
