// Package transientbd detects transient performance bottlenecks in n-tier
// applications through fine-grained load/throughput correlation analysis.
//
// It is a from-scratch Go reproduction of Wang et al., "Detecting
// Transient Bottlenecks in n-Tier Applications through Fine-Grained
// Analysis" (ICDCS 2013). Transient bottlenecks are congestion episodes
// lasting tens of milliseconds — invisible to conventional monitoring
// that samples at seconds — yet frequent enough to produce long-tail,
// bi-modal response-time distributions while every resource looks
// under-utilized.
//
// # The method
//
// The only input is a passive record of every request's arrival and
// departure timestamp at every server (obtainable from network taps,
// proxies, or access logs). For each short interval (50 ms by default)
// the analyzer computes each server's load (time-weighted concurrent
// requests) and throughput (completed requests, normalized into work
// units so mixed request classes are comparable). Plotting throughput
// against load traces a "main sequence curve" whose knee — the congestion
// point N* — is located by statistical intervention analysis. Intervals
// whose load exceeds N* are transient congestion episodes; congested
// intervals with near-zero throughput are freezes (e.g. stop-the-world
// garbage collection).
//
// # Quick start
//
//	records := []transientbd.Record{ /* from your tracing */ }
//	report, err := transientbd.Analyze(records, transientbd.Config{})
//	if err != nil { ... }
//	for _, s := range report.Ranking {
//	    fmt.Printf("%s: congested %.1f%% of intervals (N*=%.1f)\n",
//	        s.Server, 100*s.CongestedFraction, s.NStar)
//	}
//
// # Performance and concurrency
//
// The method is embarrassingly parallel across servers: load,
// normalized throughput and N* are computed independently per tier.
// Analyze exploits that — record validation/conversion, per-server
// grouping and the per-server analyses all fan out across a bounded
// worker pool sized by Config.Parallelism (0 = GOMAXPROCS, 1 = serial).
// The report is deterministic: identical at every worker count.
// Analyze, AnalyzeSystem-style batch entry points and the returned
// Report/ServerAnalysis values are safe for concurrent use; the
// streaming OnlineDetector is single-writer. PERFORMANCE.md documents
// the pipeline's cost model, the benchmark harness
// (`go run ./cmd/experiments bench`) and the BENCH_analyze.json
// baseline it maintains.
//
// # Simulation testbed
//
// The package also ships the full simulated RUBBoS-style testbed used to
// validate the method (RunScenario): a four-tier web deployment with
// switchable JVM garbage collectors and an Intel SpeedStep CPU frequency
// governor, reproducing both of the paper's case studies. See the
// examples directory and EXPERIMENTS.md.
package transientbd
