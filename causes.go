package transientbd

import (
	"transientbd/internal/cause"
	"transientbd/internal/simnet"
)

// CauseVerdict is one ranked root-cause claim attached to a Report: the
// attribution engine's best explanation for why a server congested.
// Verdicts are a pure function of the per-server series in the report,
// so the batch and streaming surfaces emit field-identical verdicts for
// equivalent windows, and the ranking is deterministic and invariant
// under a uniform time shift of the input.
type CauseVerdict struct {
	// Kind names the fingerprinted cause: "conn-pool-exhaustion",
	// "lock-convoy", "cache-stampede", "noisy-neighbor", "overload",
	// "autoscale-slow-start", "gc-pause" or "saturation".
	Kind string
	// Server is where the cause acts. For pool exhaustion this is the
	// capped server itself even when it never classifies congested —
	// the clip is witnessed from its queueing callers.
	Server string
	// Confidence in (0, 1]: how sharply the fingerprint matched.
	Confidence float64
	// Score ranks verdicts across servers: congested fraction ×
	// unexplained share × confidence. Causes are sorted by Score
	// descending.
	Score float64
	// Evidence is human-readable support, free of absolute timestamps.
	Evidence []string
}

// causeSeries reconstructs the attribution engine's view of one server
// purely from the public ServerAnalysis, so every report surface —
// batch Analyze, Stream.Snapshot/Close — feeds the engine through the
// same code path and cannot drift.
func causeSeries(sa *ServerAnalysis) cause.Series {
	s := cause.Series{
		Server:    sa.Server,
		Start:     simnet.FromStdDuration(sa.WindowStart),
		Interval:  simnet.FromStdDuration(sa.Interval),
		Load:      sa.Load,
		TP:        sa.Throughput,
		NStar:     sa.NStar,
		TPMax:     sa.TPMax,
		Saturated: sa.Saturated,
	}
	n := len(sa.Load)
	s.Congested = make([]bool, n)
	s.POI = make([]bool, n)
	if sa.Interval <= 0 {
		return s
	}
	for _, ep := range sa.Episodes {
		lo := int((ep.Start - sa.WindowStart) / sa.Interval)
		cnt := int(ep.Length / sa.Interval)
		for i := lo; i < lo+cnt; i++ {
			if i >= 0 && i < n {
				s.Congested[i] = true
			}
		}
	}
	for _, t := range sa.POITimes {
		if i := int((t - sa.WindowStart) / sa.Interval); i >= 0 && i < n {
			s.POI[i] = true
		}
	}
	return s
}

// attachCauses runs the attribution engine over a report's ranking and
// fills Report.Causes. Topology is optional: the engine's cross-server
// fingerprints (clip detection, tier grouping by name) work without a
// call graph, but a caller→callee map sharpens them — mirror congestion
// is discounted and pool clips are chased down the chain.
func attachCauses(r *Report, downstream map[string][]string) {
	ss := make([]cause.Series, 0, len(r.Ranking))
	for _, sa := range r.Ranking {
		ss = append(ss, causeSeries(sa))
	}
	verdicts := cause.Attribute(ss, cause.Options{Downstream: downstream})
	r.Causes = make([]CauseVerdict, 0, len(verdicts))
	for _, v := range verdicts {
		r.Causes = append(r.Causes, CauseVerdict{
			Kind:       string(v.Kind),
			Server:     v.Server,
			Confidence: v.Confidence,
			Score:      v.Score,
			Evidence:   v.Evidence,
		})
	}
}
