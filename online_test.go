package transientbd

import (
	"sort"
	"testing"
	"time"
)

func TestOnlineDetectorEndToEnd(t *testing.T) {
	recs := busyTrace()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Depart < recs[j].Depart })

	d := NewOnlineDetector(OnlineConfig{
		Reestimate: 2 * time.Second,
		Window:     30 * time.Second,
	})
	var congested []OnlineAlert
	for _, r := range recs {
		for _, a := range d.Advance(r.Depart - 500*time.Millisecond) {
			if a.Congested {
				congested = append(congested, a)
			}
		}
		if err := d.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range d.Advance(10 * time.Second) {
		if a.Congested {
			congested = append(congested, a)
		}
	}
	if len(congested) == 0 {
		t.Fatal("streaming detector missed the overload phase")
	}
	// Congestion alerts cluster around the burst at [2s, 2.5s) and drain.
	for _, a := range congested {
		if a.Time < 1900*time.Millisecond || a.Time > 6*time.Second {
			t.Errorf("congested alert at %v outside the overload window", a.Time)
		}
		if a.Server != "db" {
			t.Errorf("alert from %s, want db", a.Server)
		}
	}
	if _, ok := d.NStar("db"); !ok {
		t.Error("no N* estimate after the run")
	}
	if _, ok := d.NStar("nosuch"); ok {
		t.Error("N* for unknown server")
	}
}

func TestOnlineDetectorValidation(t *testing.T) {
	d := NewOnlineDetector(OnlineConfig{})
	if err := d.Observe(Record{}); err == nil {
		t.Error("want error for record without server")
	}
	if got := d.Advance(time.Second); len(got) != 0 {
		t.Errorf("alerts with no servers = %d", len(got))
	}
}
